package iosnap

import (
	"fmt"
	"sort"

	"iosnap/internal/bitmap"
	"iosnap/internal/header"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/retry"
	"iosnap/internal/sim"
)

// The snapshot-aware segment cleaner (paper §5.4.3). Cleaning a segment:
//
//  1. merge the per-epoch validity bitmaps (logical OR, skipping deleted
//     epochs) into a cumulative map for the segment;
//  2. copy-forward the blocks valid in the merged map, preserving their
//     epoch tags (the OOB header moves verbatim);
//  3. for every live epoch that referenced a moved block, clear the old bit
//     and set the new one — in the worst case as many flips as epochs;
//  4. re-point the forward map of every view (active and activated) whose
//     translation referenced the moved block;
//  5. erase the victim.

// mergeSegment computes the merged validity for one segment from scratch.
// The hot paths read the incremental caches in gcacct.go instead; this stays
// as the reference implementation for the accounting invariant check, the
// victim-selection benchmark, and diagnostics.
func (f *FTL) mergeSegment(seg int) (*bitmap.Bitmap, sim.Duration) {
	pps := int64(f.cfg.Nand.PagesPerSegment)
	lo, hi := int64(seg)*pps, int64(seg+1)*pps
	epochs := f.vstore.Epochs()
	merged := f.vstore.MergeRange(epochs, lo, hi)
	// Host cost: one pass per live (non-deleted) epoch over the segment.
	live := 0
	for _, e := range epochs {
		if !f.vstore.Deleted(e) {
			live++
		}
	}
	cost := sim.Duration(int64(live)) * sim.Duration(pps) * f.cfg.MergeCPUPerBlock
	return merged, cost
}

// selectVictim picks the non-head segment with the best score under the
// *merged* view (the only correct notion of invalid once snapshots exist),
// returning the victim, its merged valid count, the active-epoch valid
// count (the vanilla estimate), and the merge CPU charged for bringing
// stale caches up to date. A segment with no merged-invalid block is never
// a victim — cleaning it would be pure copy-forward churn. The log head and
// a segment mid-clean are never picked (a forced clean stealing the latter
// would erase it twice and corrupt the free pool).
func (f *FTL) selectVictim() (victim, mergedValid, activeValid int, cost sim.Duration) {
	cost = f.acct.refreshAll()
	f.stats.GCVictimSelects++
	if cost == 0 {
		f.stats.GCCacheHits++
	}
	var e *segAcct
	if f.cfg.VictimPolicy == VictimCostBenefit {
		e = f.acct.bestCostBenefit()
	} else {
		e = f.acct.bestGreedy()
	}
	if e == nil {
		return -1, 0, 0, cost
	}
	pps := int64(f.cfg.Nand.PagesPerSegment)
	lo, hi := int64(e.seg)*pps, int64(e.seg+1)*pps
	return e.seg, e.valid, f.vstore.CountValid(f.active.epoch, lo, hi), cost
}

// selectVictimScratch re-derives the victim by a full re-merge of every
// used segment — the pre-incremental algorithm. Kept (uncharged) as the
// reference the accounting cross-check and BenchmarkVictimSelect compare
// against.
func (f *FTL) selectVictimScratch() (victim, mergedValid int) {
	pps := int64(f.cfg.Nand.PagesPerSegment)
	best := -1
	bestScore := -1.0
	bestMerged := 0
	for _, seg := range f.usedSegs {
		if seg == f.headSeg || seg == f.gcVictim {
			continue
		}
		merged, _ := f.mergeSegment(seg)
		mv := merged.Count()
		invalid := int(pps) - mv - f.pinnedInSeg(seg)
		if invalid <= 0 {
			continue
		}
		score := victimScore(f.cfg.VictimPolicy, invalid, mv, f.seq, f.segLastSeq[seg])
		if score > bestScore {
			best, bestScore, bestMerged = seg, score, mv
		}
	}
	return best, bestMerged
}

// VictimPolicy selects the cleaner's segment-choice heuristic.
type VictimPolicy int

const (
	// VictimGreedy picks the segment with the most merged-invalid blocks.
	VictimGreedy VictimPolicy = iota
	// VictimCostBenefit weighs reclaimable space by block age (the classic
	// LFS benefit/cost heuristic). With snapshots present this tends to
	// segregate cold, pinned data — the co-location goal of §5.4.2.
	VictimCostBenefit
)

func (p VictimPolicy) String() string {
	if p == VictimCostBenefit {
		return "cost-benefit"
	}
	return "greedy"
}

// victimScore rates a candidate segment; higher is better.
func victimScore(policy VictimPolicy, invalid, valid int, curSeq, segSeq uint64) float64 {
	switch policy {
	case VictimCostBenefit:
		u := float64(valid) / float64(valid+invalid)
		age := float64(curSeq - segSeq)
		return (1 - u) * age / (1 + u)
	default:
		return float64(invalid)
	}
}

// releaseGCGate returns a background clean's budget token, if a gate is
// arbitrating cleans across FTL instances.
func (f *FTL) releaseGCGate() {
	if f.cfg.GCGate != nil {
		f.cfg.GCGate.Release()
	}
}

// maybeScheduleGC starts background cleaning when the pool is low. With a
// GCGate configured, a clean only starts when the shared budget grants a
// token; a denied shard retries on its next head advance.
func (f *FTL) maybeScheduleGC(now sim.Time) {
	if f.gcActive || f.closed || len(f.freeSegs) > f.cfg.ReserveSegments {
		return
	}
	if f.cfg.GCGate != nil && !f.cfg.GCGate.TryAcquire() {
		return
	}
	victim, mergedValid, activeValid, cost := f.selectVictim()
	f.stats.GCMergeTime += cost
	if victim < 0 {
		f.releaseGCGate()
		return
	}
	est := mergedValid
	if f.cfg.GCPolicy == GCVanillaEstimate {
		// The unmodified driver plans from the active epoch only; with
		// snapshots present this underestimates the copy-forward work and
		// the tail of the clean runs unpaced (Figure 10b).
		est = activeValid
	}
	quanta := (est + f.cfg.GCChunk - 1) / f.cfg.GCChunk
	f.gcActive = true
	f.gcVictim = victim
	// Hand the selection-time merged map to the task: re-merging it in the
	// task's first quantum would charge GCMergeTime twice for one clean.
	merged := f.acct.mergedClone(victim)
	f.orPinsInto(victim, merged)
	task := &gcTask{
		f:       f,
		victim:  victim,
		pacer:   ratelimit.NewPacer(now, quanta, f.cfg.GCWindow),
		started: now,
		merged:  merged,
		order:   f.copyOrder(victim, merged),
	}
	f.sched.Schedule(now, task)
}

// gcTask incrementally cleans one victim under pacing.
type gcTask struct {
	f       *FTL
	victim  int
	pacer   *ratelimit.Pacer
	started sim.Time
	order   []int // victim page indices to examine, in copy order
	cursor  int
	merged  *bitmap.Bitmap
}

// Name implements sim.Task.
func (t *gcTask) Name() string { return fmt.Sprintf("iosnap-gc(seg %d)", t.victim) }

// Run implements sim.Task.
func (t *gcTask) Run(now sim.Time) (sim.Time, bool) {
	f := t.f

	var err error
	t.cursor, now, err = f.copyForward(now, t.victim, t.merged, t.order, t.cursor, f.cfg.GCChunk)
	if err != nil {
		// Abort, but leave the victim cleanable: blocks already moved had
		// their validity bits and translations re-pointed one by one, the
		// failed destination page was rolled back by copyForward, and the
		// victim stays in usedSegs for a later clean to re-select. Record
		// the error instead of dropping it on the floor.
		t.abort(err)
		return 0, true
	}
	if t.cursor < len(t.order) {
		next := t.pacer.Ready(now)
		if _, overrun := t.pacer.Consumed(); overrun {
			// The estimate was exhausted: this quantum (and the rest of the
			// segment) runs unthrottled — the failure mode of a snapshot-
			// unaware work estimate (Figure 10b).
			f.stats.GCUnpacedQuanta++
		}
		return next, false
	}
	now, err = f.finishClean(now, t.victim)
	f.gcActive = false
	f.gcVictim = -1
	f.releaseGCGate()
	if err != nil {
		// Erase failed: finishClean left the victim in usedSegs and its
		// remaining valid blocks untouched, so the device is consistent.
		f.stats.GCErrors++
		f.stats.GCLastErr = err.Error()
		return 0, true
	}
	f.stats.GCRuns++
	f.stats.GCTotalTime += now.Sub(t.started)
	f.stats.GCLastAt = now
	f.maybeScheduleGC(now)
	return 0, true
}

// abort ends a background clean on a device error, recording it in Stats.
func (t *gcTask) abort(err error) {
	f := t.f
	f.gcActive = false
	f.gcVictim = -1
	f.releaseGCGate()
	f.stats.GCErrors++
	f.stats.GCLastErr = err.Error()
}

// copyOrder lists the victim's valid page indices. With EpochSegregation
// the cleaner groups blocks by epoch so data of one snapshot stays
// co-located after cleaning (§5.4.2's policy, built as an ablation).
func (f *FTL) copyOrder(victim int, merged *bitmap.Bitmap) []int {
	pps := f.cfg.Nand.PagesPerSegment
	idxs := make([]int, 0, pps)
	for i := 0; i < pps; i++ {
		if merged.Test(int64(i)) {
			idxs = append(idxs, i)
		}
	}
	if !f.cfg.EpochSegregation {
		return idxs
	}
	type tagged struct{ idx, epoch int }
	tags := make([]tagged, 0, len(idxs))
	for _, i := range idxs {
		e := 0
		if oob, err := f.dev.PageOOB(f.dev.Addr(victim, i)); err == nil {
			if h, err := header.Unmarshal(oob); err == nil {
				e = int(h.Epoch)
			}
		}
		tags = append(tags, tagged{i, e})
	}
	sort.SliceStable(tags, func(a, b int) bool { return tags[a].epoch < tags[b].epoch })
	out := make([]int, len(tags))
	for i, tg := range tags {
		out[i] = tg.idx
	}
	return out
}

// cleanOnce synchronously cleans the best victim (forced path). Selection
// already leaves the victim's merged map cached and fresh, so the clean
// reuses it instead of merging (and charging) a second time.
func (f *FTL) cleanOnce(now sim.Time, forced bool) (sim.Time, error) {
	victim, _, _, cost := f.selectVictim()
	f.stats.GCMergeTime += cost
	now = now.Add(cost)
	if victim < 0 {
		return now, ErrDeviceFull
	}
	merged := f.acct.mergedClone(victim)
	f.orPinsInto(victim, merged)
	order := f.copyOrder(victim, merged)
	start := now
	cursor := 0
	for cursor < len(order) {
		var err error
		cursor, now, err = f.copyForward(now, victim, merged, order, cursor, len(order))
		if err != nil {
			return now, err
		}
	}
	now, err := f.finishClean(now, victim)
	if err != nil {
		return now, err
	}
	f.stats.GCRuns++
	if forced {
		f.stats.GCForced++
	}
	f.stats.GCTotalTime += now.Sub(start)
	f.stats.GCLastAt = now
	return now, nil
}

// copyForward moves up to max blocks from order[cursor:], fixing every
// epoch's validity bits and every view's translation.
//
// The quantum is planned first (destination allocation + header decode are
// host-side) and then issued as one devCopyPages call per head segment.
// Copies within one quantum were always pipelined — submitted together at
// the quantum's start and serialized by the device's per-channel queues —
// so the batch submission is virtual-time identical to the per-page
// reference loop below (nand.CopyPages is exactly sequential-equivalent).
func (f *FTL) copyForward(now sim.Time, victim int, merged *bitmap.Bitmap, order []int, cursor, max int) (int, sim.Time, error) {
	if f.cfg.ReferenceDataPath {
		return f.copyForwardRef(now, victim, merged, order, cursor, max)
	}
	copied := 0
	submit := now
	maxDone := now
	pps := f.cfg.Nand.PagesPerSegment
	var (
		froms, tos []nand.PageAddr
		hs         []header.Header
		pins       []bool
	)
	for cursor < len(order) && copied < max {
		froms, tos, hs, pins = froms[:0], tos[:0], hs[:0], pins[:0]
		room := max - copied
		var planErr error
		for len(froms) < room && cursor < len(order) {
			idx := order[cursor]
			cursor++
			old := f.dev.Addr(victim, idx)
			dst, _, err := f.allocPageGC(submit)
			if err != nil {
				planErr = err
				break
			}
			oob, err := f.dev.PageOOB(old)
			if err != nil {
				f.ungetPage(dst)
				planErr = fmt.Errorf("iosnap: cleaner reading header: %w", err)
				break
			}
			h, err := header.Unmarshal(oob)
			if err != nil {
				f.ungetPage(dst)
				planErr = fmt.Errorf("iosnap: cleaner decoding header: %w", err)
				break
			}
			froms = append(froms, old)
			tos = append(tos, dst)
			hs = append(hs, h)
			_, mapPinned := f.mapPins[old]
			pins = append(pins, f.ckptPins[old] || mapPinned)
			if len(froms) == 1 {
				// Confine the batch to the current head segment so a
				// mid-batch failure rolls back with a plain headIdx walk.
				if r := 1 + pps - f.headIdx; r < room {
					room = r
				}
			}
		}
		n, d, copyErr := f.devCopyPages(submit, froms, tos)
		if d > maxDone {
			maxDone = d
		}
		for j := 0; j < n; j++ {
			f.gcFixup(victim, froms[j], tos[j], hs[j], pins[j])
		}
		copied += n
		if copyErr != nil {
			// Hand back the destinations that were planned but never
			// attempted, then the failing page's own (which may have landed
			// after all — ungetPage checks). The cursor resumes just past
			// the failing entry in order, exactly as the per-page loop would.
			unattempted := len(tos) - n - 1
			f.headIdx -= unattempted
			f.ungetPage(tos[n])
			cursor -= unattempted
			return cursor, maxDone, fmt.Errorf("iosnap: copy-forward: %w", copyErr)
		}
		if planErr != nil {
			return cursor, maxDone, planErr
		}
	}
	return cursor, maxDone, nil
}

// copyForwardRef is the per-page reference implementation of copyForward,
// kept for the batched-vs-reference equivalence tests (Config.ReferenceDataPath).
func (f *FTL) copyForwardRef(now sim.Time, victim int, merged *bitmap.Bitmap, order []int, cursor, max int) (int, sim.Time, error) {
	copied := 0
	// Copies within one quantum are pipelined: all are submitted at the
	// quantum's start and the device's per-channel queues serialize them,
	// exactly like a cleaner thread issuing a batch of copyback commands.
	submit := now
	maxDone := now
	for cursor < len(order) && copied < max {
		idx := order[cursor]
		cursor++
		old := f.dev.Addr(victim, idx)
		dst, t, err := f.allocPageGC(submit)
		if err != nil {
			return cursor, maxDone, err
		}
		_ = t
		oob, err := f.dev.PageOOB(old)
		if err != nil {
			f.ungetPage(dst)
			return cursor, maxDone, fmt.Errorf("iosnap: cleaner reading header: %w", err)
		}
		h, err := header.Unmarshal(oob)
		if err != nil {
			f.ungetPage(dst)
			return cursor, maxDone, fmt.Errorf("iosnap: cleaner decoding header: %w", err)
		}
		_, mapPinned := f.mapPins[old]
		pinned := f.ckptPins[old] || mapPinned
		done, err := f.devCopyPage(submit, old, dst)
		if err != nil {
			f.ungetPage(dst)
			return cursor, maxDone, fmt.Errorf("iosnap: copy-forward: %w", err)
		}
		if done > maxDone {
			maxDone = done
		}
		f.gcFixup(victim, old, dst, h, pinned)
		copied++
	}
	return cursor, maxDone, nil
}

// gcFixup applies the host-side metadata moves for one copied block: the
// destination inherits the block's age and epoch presence, pins and anchors
// follow pinned pages, every holding epoch's validity bit is re-pointed
// (step 3), and every view's forward map entry follows (step 4).
func (f *FTL) gcFixup(victim int, old, dst nand.PageAddr, h header.Header, pinned bool) {
	// The destination inherits the block's age (its original seq), so
	// segments holding cold data still look old to cost-benefit.
	dseg := f.dev.SegmentOf(dst)
	if h.Seq > f.segLastSeq[dseg] {
		f.segLastSeq[dseg] = h.Seq
	}
	// Checkpoint chunks carry chunk geometry in the Epoch field, not an
	// epoch, and translation pages are valid in no epoch: neither
	// contributes to presence, and their pins follow the page instead of
	// validity bits.
	if !h.Type.IsCheckpoint() && h.Type != header.TypeMapPage {
		f.presence.add(dseg, bitmap.Epoch(h.Epoch))
	}
	if pinned {
		if h.Type == header.TypeMapPage {
			f.moveMapPin(old, dst)
		} else {
			f.movePin(old, dst)
		}
	}

	// Step 3: re-point every live epoch that saw the old block. In the
	// worst case this flips bits in as many maps as there are epochs.
	// Holders MUST be computed before any mutation: clearing an
	// ancestor's bit first would make an inheriting descendant test
	// false and silently lose the block.
	var holders []bitmap.Epoch
	for _, e := range f.vstore.Epochs() {
		if !f.vstore.Deleted(e) && f.vstore.Test(e, int64(old)) {
			holders = append(holders, e)
		}
	}
	// Epochs() enumerates in map order; the clear/set order below decides
	// which epochs pay CoW push-down copies, so fix it for reproducibility.
	sort.Slice(holders, func(a, b int) bool { return holders[a] < holders[b] })
	for _, e := range holders {
		f.vstore.Clear(e, int64(old))
		f.vstore.Set(e, int64(dst))
	}
	// Mirror the re-point in the incremental accounting: the holders are
	// known exactly here, so both the merged and the frozen caches can be
	// fixed without a rebuild.
	frozenHolder := false
	for _, e := range holders {
		isView := false
		for _, v := range f.views {
			if v.epoch == e {
				isView = true
				break
			}
		}
		if !isView {
			frozenHolder = true
			break
		}
	}
	f.acct.onBlockMoved(old, dst, len(holders) > 0, frozenHolder)
	// Step 4: re-point forward maps.
	if h.Type == header.TypeData {
		for _, v := range f.views {
			if cur, ok := v.fmap.Lookup(h.LBA); ok && cur == uint64(old) {
				v.fmap.Insert(h.LBA, uint64(dst))
			}
		}
	}
	// Keep in-flight activations and exports coherent.
	for _, a := range f.activations {
		a.onBlockMoved(old, dst, h)
	}
	for _, x := range f.exports {
		x.onBlockMoved(old, dst, h)
	}
	f.stats.GCCopied++
	if f.dev.SegmentHealth(victim) != nand.Healthy {
		f.stats.RescuedPages++
	}
}

// finishClean erases the victim and returns it to the pool — or retires it.
// By this point every block valid in ANY live epoch has been copied off
// (copy-forward runs under the merged validity map), so a permanently
// failing or suspect victim can leave service without losing a byte of any
// snapshot; returning it to the pool would just let the next writer trip
// over the same dying segment.
func (f *FTL) finishClean(now sim.Time, victim int) (sim.Time, error) {
	done, err := f.devEraseSegment(now, victim)
	if err != nil {
		if retry.MediaFailure(err) {
			f.retireSegment(victim)
			return now, nil
		}
		return now, fmt.Errorf("iosnap: erasing segment %d: %w", victim, err)
	}
	f.stats.GCErases++
	if f.dev.SegmentHealth(victim) != nand.Healthy {
		f.retireSegment(victim)
		return done, nil
	}
	for i, s := range f.usedSegs {
		if s == victim {
			f.usedSegs = append(f.usedSegs[:i], f.usedSegs[i+1:]...)
			break
		}
	}
	f.freeSegs = append(f.freeSegs, victim)
	f.presence.clear(victim)
	f.acct.untrack(victim)
	return done, nil
}

// SegmentEpochRuns measures epoch intermixing: the number of maximal runs
// of equal-epoch programmed pages in a segment (1 = perfectly co-located).
// Used by the epoch-segregation ablation bench.
func (f *FTL) SegmentEpochRuns(seg int) int {
	pps := f.cfg.Nand.PagesPerSegment
	runs := 0
	prev := int64(-1)
	for i := 0; i < pps; i++ {
		oob, err := f.dev.PageOOB(f.dev.Addr(seg, i))
		if err != nil {
			continue
		}
		h, err := header.Unmarshal(oob)
		if err != nil {
			continue
		}
		if int64(h.Epoch) != prev {
			runs++
			prev = int64(h.Epoch)
		}
	}
	return runs
}
