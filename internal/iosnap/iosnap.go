// Package iosnap implements the paper's contribution: a snapshot-capable
// log-structured FTL ("ioSnap", EuroSys 2014). It extends the vanilla
// Remap-on-Write design of internal/ftl with:
//
//   - epochs — a monotonically increasing counter stamped into every block
//     header, preserving log-time across segment-cleaner intermixing (§5.3.2);
//   - a snapshot tree recording how snapshots inherit from one another
//     through creates and activations (§5.3.2, Figure 4);
//   - per-epoch copy-on-write validity bitmaps, so unactivated snapshots
//     consume almost no memory and no reference counters bound the snapshot
//     count (§5.4.1);
//   - a snapshot-aware segment cleaner that merges per-epoch validity maps
//     and re-points every referencing epoch when it moves a block (§5.4.3);
//   - deferred, rate-limited snapshot activation that rebuilds a snapshot's
//     forward map from a log scan (§5.6);
//   - two-pass crash recovery reconstructing the snapshot tree, the active
//     forward map, and per-epoch validity maps (§5.5).
//
// Snapshot create and delete are a single log note (~tens of µs); all
// expensive work is deferred to the rare activation path — the paper's
// central design trade-off.
package iosnap

import (
	"errors"
	"fmt"

	"iosnap/internal/bitmap"
	"iosnap/internal/header"
	"iosnap/internal/mapcache"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/retry"
	"iosnap/internal/sim"
)

// Errors returned by ioSnap operations.
var (
	ErrOutOfRange      = errors.New("iosnap: LBA out of range")
	ErrBadLength       = errors.New("iosnap: buffer not a multiple of sector size")
	ErrClosed          = errors.New("iosnap: device closed")
	ErrDeviceFull      = errors.New("iosnap: no reclaimable space")
	ErrNoSuchSnapshot  = errors.New("iosnap: no such snapshot")
	ErrSnapshotDeleted = errors.New("iosnap: snapshot deleted")
	ErrNotReady        = errors.New("iosnap: activation not finished")
	ErrViewClosed      = errors.New("iosnap: activated view deactivated")
	ErrReadOnlyView    = errors.New("iosnap: view is read-only")
	// ErrOutOfSpace is the graceful-degradation error: the free pool fell to
	// the rescue reserve with nothing reclaimable, so new writes shed while
	// reads, snapshot deletes, and GC keep working. The condition clears
	// automatically once cleaning frees space (e.g. after a trim or a
	// snapshot delete releases blocks).
	ErrOutOfSpace = errors.New("iosnap: out of space (degraded read-only)")
)

// GCPolicy selects how the cleaner estimates its work for pacing.
type GCPolicy int

const (
	// GCVanillaEstimate paces from the *active* epoch's validity only — the
	// unmodified driver policy, which underestimates work when snapshotted
	// data must move and so bunches copy-forward (Figure 10b).
	GCVanillaEstimate GCPolicy = iota
	// GCSnapshotAware paces from the merged validity across all live epochs
	// (Figure 10c).
	GCSnapshotAware
)

func (p GCPolicy) String() string {
	if p == GCSnapshotAware {
		return "snapshot-aware"
	}
	return "vanilla-estimate"
}

// Config parameterizes the snapshot-capable FTL.
type Config struct {
	Nand nand.Config

	// UserSectors is the advertised logical capacity (see ftl.Config).
	UserSectors int64
	// ReserveSegments triggers background cleaning at or below this pool size.
	ReserveSegments int
	// GCWindow paces the copy-forward of one victim segment.
	GCWindow sim.Duration
	// GCChunk is pages copied per cleaning quantum.
	GCChunk int
	// GCPolicy selects the pacing estimate (Figure 10's ablation).
	GCPolicy GCPolicy
	// VictimPolicy selects the cleaner's segment-choice heuristic.
	VictimPolicy VictimPolicy
	// EpochSegregation makes the cleaner copy a victim's blocks grouped by
	// epoch, minimizing intermix in the destination segment (§5.4.2's
	// policy sketch; an ablation in this repo).
	EpochSegregation bool

	// MapCPUCost is the host cost of one forward-map descent. A multi-sector
	// request is charged once per *leaf* its run spans in a maximally-packed tree (ftlmap.RunSpan),
	// not once per sector — the batched data path's cost model (DESIGN.md
	// §10).
	MapCPUCost sim.Duration
	// MapCachePages selects the active forward map's memory layout
	// (DESIGN.md §13). 0 (the default) keeps the in-RAM B+tree. Non-zero
	// switches to the flash-resident paged map: translation pages of
	// mapcache.SlotsFor(SectorSize) slots each, a RAM-pinned global
	// translation directory, and a CLOCK cache of resident pages. A
	// positive value bounds the cache to that many resident translation
	// pages — dirty pages write back through the log head on eviction and
	// the map's host footprint becomes O(cache + GTD) instead of O(map) —
	// and requires a data-storing device (Nand.StoreData). A negative
	// value runs the paged layout cache-unbounded: nothing is ever written
	// to flash, which keeps it lockstep bit-exact with the tree.
	MapCachePages int
	// ReferenceDataPath selects the per-sector reference implementation of
	// the data path: per-key map operations, per-bit validity flips, and
	// per-page device calls, on the exact virtual-time skeleton the batched
	// path uses. The equivalence tests run workloads both ways and demand
	// identical device state, Stats, and completion times.
	ReferenceDataPath bool
	// MergeCPUPerBlock is the host cost, per block per epoch, of validity
	// merging in the cleaner (Table 4's "validity merge" column).
	MergeCPUPerBlock sim.Duration
	// CoWPageCost is the host cost of copying one validity-bitmap page when
	// a write mutates a page frozen by a snapshot (Figure 7's spikes).
	CoWPageCost sim.Duration
	// ReconstructCPUPerEntry is the host cost per translation when building
	// a forward map during activation or recovery.
	ReconstructCPUPerEntry sim.Duration
	// BitmapPageBits is the CoW granularity of validity maps in bits
	// (default: one 4 KB page = 32768 blocks).
	BitmapPageBits int64

	// ActivationBatch is how many segment scans an *unthrottled* activation
	// keeps in flight per quantum; larger batches saturate the device and
	// hurt foreground latency more (Figure 9a).
	ActivationBatch int

	// SelectiveScan enables the paper's §7 activation optimization: scan
	// only the segments whose epoch-presence summary intersects the
	// snapshot's lineage, instead of the whole log.
	SelectiveScan bool

	// Retry bounds how many times a failed NAND operation is reissued and
	// how virtual-time backoff grows between attempts. Errors that persist
	// past the budget are permanent: the segment is marked suspect and the
	// rescue machinery takes over.
	Retry retry.Policy
	// RescueReserve is the number of free segments held back from normal
	// allocation so a dying segment can always be rescued (copy-forward
	// needs destination space even when the device is nearly full). When
	// the pool would dip below the reserve and nothing is reclaimable,
	// writes shed with ErrOutOfSpace instead of consuming the reserve.
	RescueReserve int
	// ScrubInterval arms the background scrubber: at most one scrub pass
	// per interval walks the used segments oldest-first, read-verifying
	// their headers and rescuing+retiring any suspect segment. Zero
	// disables scrubbing (the default; cleaning still retires suspects).
	ScrubInterval sim.Duration
	// ScrubLimit paces the scrubber's segment scans (work/sleep, like
	// activation rate-limiting) so foreground latency is preserved. The
	// zero value scrubs unthrottled.
	ScrubLimit ratelimit.WorkSleep
	// CheckpointInterval arms the periodic background checkpoint: at most
	// one snapshot-aware checkpoint (active map + snapshot tree + per-epoch
	// validity deltas) is written to the log per interval, bounding how much
	// of the log recovery must scan. Zero disables periodic checkpoints
	// (Close still writes one when the device stores data).
	CheckpointInterval sim.Duration
	// CheckpointLimit paces the background checkpoint's chunk programs
	// (work/sleep) so serialization never stalls foreground writes. The
	// zero value programs unthrottled.
	CheckpointLimit ratelimit.WorkSleep

	// GCGate, when non-nil, arbitrates *background* cleaning across FTL
	// instances that share a budget (the sharded front-end's global GC
	// governor): maybeScheduleGC acquires the gate before starting a
	// cleaner task and releases it when the task ends, and a denied
	// acquisition simply defers cleaning to the next head advance. Forced
	// synchronous cleans bypass the gate — they are how a writer makes
	// progress and must never deadlock on another shard's budget. nil (the
	// default) leaves scheduling exactly as it was.
	GCGate GCGate
}

// GCGate is a cross-FTL admission gate for background cleaning. TryAcquire
// reports whether a new background clean may start; every successful
// acquisition is matched by exactly one Release when the clean finishes or
// aborts. Implementations must be safe for concurrent use when FTLs run on
// separate goroutines (service mode).
type GCGate interface {
	TryAcquire() bool
	Release()
}

// DefaultConfig mirrors ftl.DefaultConfig with the snapshot knobs added.
func DefaultConfig(nc nand.Config) Config {
	phys := nc.TotalPages()
	reserve := nc.Segments / 16
	if reserve < 2 {
		reserve = 2
	}
	user := phys * 7 / 8
	maxUser := int64(nc.Segments-reserve-1) * int64(nc.PagesPerSegment)
	if user > maxUser {
		user = maxUser
	}
	return Config{
		Nand:                   nc,
		UserSectors:            user,
		ReserveSegments:        reserve,
		GCWindow:               10 * sim.Second,
		GCChunk:                32,
		GCPolicy:               GCSnapshotAware,
		MapCPUCost:             300 * sim.Nanosecond,
		MergeCPUPerBlock:       15 * sim.Nanosecond,
		CoWPageCost:            100 * sim.Microsecond,
		ReconstructCPUPerEntry: 150 * sim.Nanosecond,
		BitmapPageBits:         bitmap.DefaultBitsPerPage,
		ActivationBatch:        8,
		Retry:                  retry.Default(),
		RescueReserve:          2,
	}
}

// dataReserve is the free-pool floor for ordinary allocation. At least one
// segment must always stay free for the cleaner's copy destination.
func (c Config) dataReserve() int {
	if c.RescueReserve < 1 {
		return 1
	}
	return c.RescueReserve
}

// Validate checks configuration consistency.
func (c Config) Validate() error {
	if err := c.Nand.Validate(); err != nil {
		return err
	}
	if c.UserSectors <= 0 || c.UserSectors >= c.Nand.TotalPages() {
		return fmt.Errorf("iosnap: UserSectors %d must be positive and leave over-provisioning (physical %d)",
			c.UserSectors, c.Nand.TotalPages())
	}
	if c.ReserveSegments < 1 || c.ReserveSegments >= c.Nand.Segments {
		return fmt.Errorf("iosnap: ReserveSegments %d out of range", c.ReserveSegments)
	}
	if c.GCChunk <= 0 {
		return fmt.Errorf("iosnap: GCChunk %d must be positive", c.GCChunk)
	}
	if c.BitmapPageBits != 0 && (c.BitmapPageBits < 64 || c.BitmapPageBits%64 != 0) {
		return fmt.Errorf("iosnap: BitmapPageBits %d must be a positive multiple of 64", c.BitmapPageBits)
	}
	if c.ActivationBatch < 1 {
		return fmt.Errorf("iosnap: ActivationBatch %d must be at least 1", c.ActivationBatch)
	}
	if c.RescueReserve < 0 || c.RescueReserve >= c.Nand.Segments {
		return fmt.Errorf("iosnap: RescueReserve %d out of range", c.RescueReserve)
	}
	if c.ScrubInterval < 0 {
		return fmt.Errorf("iosnap: ScrubInterval must not be negative")
	}
	if c.CheckpointInterval < 0 {
		return fmt.Errorf("iosnap: CheckpointInterval must not be negative")
	}
	if c.MapCachePages > 0 && !c.Nand.StoreData {
		return fmt.Errorf("iosnap: MapCachePages %d requires a data-storing device (translation pages live on flash)", c.MapCachePages)
	}
	return nil
}

// mapLimit converts MapCachePages to the cache's residency-limit parameter
// (<=0 = unbounded).
func (c Config) mapLimit() int {
	if c.MapCachePages < 0 {
		return 0
	}
	return c.MapCachePages
}

// Stats counts ioSnap activity.
type Stats struct {
	UserReads    int64 // sectors read by the user (not calls)
	UserWrites   int64 // sectors written by the user (not calls)
	BytesRead    int64
	BytesWritten int64
	Trims        int64

	SnapshotCreates     int64
	SnapshotDeletes     int64
	SnapshotActivations int64
	CoWPageCopies       int64 // validity bitmap pages copied (Figure 7b)

	GCRuns          int64
	GCForced        int64
	GCCopied        int64
	GCErases        int64
	GCErrors        int64  // background cleans aborted by device errors
	GCLastErr       string // most recent aborting error ("" when none)
	GCUnpacedQuanta int64  // cleaner quanta run unthrottled because the work estimate was exhausted
	GCMergeTime     sim.Duration
	GCTotalTime     sim.Duration
	GCLastAt        sim.Time

	GCVictimSelects     int64 // victim-selection decisions taken
	GCCacheHits         int64 // decisions served entirely from fresh merge caches
	GCCacheRebuilds     int64 // per-segment merge caches rebuilt after an epoch-set change
	GCCacheRebuildPages int64 // pages passed over by those rebuilds

	TornPagesSkipped int64 // unparseable OOB headers tolerated during recovery/activation scans

	// Batched data-path accounting. The reference path reports the same
	// numbers — what the batched path would have submitted — so the two
	// paths' Stats stay comparable field for field.
	BatchDescents  int64 // leaf descents charged for run operations
	BatchPages     int64 // pages submitted through batch NAND entry points
	BatchNandCalls int64 // batch NAND calls issued (one per run chunk)

	Checkpoints       int64  // checkpoint generations committed
	CheckpointChunks  int64  // chunk pages programmed by committed generations
	CheckpointErrors  int64  // checkpoint attempts aborted by errors
	CheckpointLastErr string // most recent aborting error ("" when none)

	RecoveryTailBounded bool  // last recovery loaded a checkpoint and scanned only the tail
	RecoveryFallbacks   int64 // tail recoveries abandoned for the full scan
	RecoverySegsScanned int64 // segments header-scanned by the last recovery
	RecoveryHeaderPages int64 // header pages read by the last recovery

	Retries         int64 // NAND operations reissued after a transient error
	MediaFailures   int64 // permanent media failures observed (segments marked suspect)
	SegmentsSuspect int   // segments awaiting rescue (refreshed by Stats())
	SegmentsRetired int   // segments permanently out of service (refreshed by Stats())
	RescuedPages    int64 // blocks copied off suspect segments by rescue/scrub

	ScrubPasses   int64    // completed scrub passes over the log
	ScrubSegments int64    // segments read-verified by the scrubber
	ScrubRescues  int64    // suspect segments rescued+retired by the scrubber
	ScrubLastAt   sim.Time // completion time of the last scrub pass

	OutOfSpaceWrites int64 // writes shed with ErrOutOfSpace
	Degraded         bool  // currently in out-of-space read-only degradation

	ExportChunks     int64 // chunks shipped by snapshot exports (after dedup)
	ExportDedupHits  int64 // chunks the receiver already held (listed, not shipped)
	ImportRetries    int64 // replication receive/verify attempts re-driven
	ImportResumes    int64 // receives resumed from a persisted journal
	VerifyMismatches int64 // replica sectors that failed post-receive verification

	MapMemory         int64 // active forward map bytes, as if fully resident (refreshed by Stats())
	MapMemoryResident int64 // host RAM the map actually holds: resident pages + GTD (refreshed by Stats())
	MapCacheHits      int64 // translation pages served from the cache (paged mode)
	MapCacheMisses    int64 // translation pages faulted from flash (paged mode)
	MapCacheEvictions int64 // resident translation pages evicted (paged mode)
	MapPagesFlushed   int64 // dirty translation pages written back to the log (paged mode)
	ValidityMemory    int64 // CoW validity pages bytes (refreshed by Stats())
	WriteAmplify      float64
}

// view is one writable-or-readable mapping of the device: the active tree,
// or an activated snapshot.
type view struct {
	fmap     *mapcache.Map
	epoch    bitmap.Epoch
	writable bool
	closed   bool
	// parent is the snapshot this view descends from (nil for the initial
	// active view of a fresh device).
	parent *Snapshot
	// fromActivation is true while the view's epoch is still the one its
	// activation note allocated. Crash recovery kills exactly those epochs
	// (an un-snapshotted activation dies with the host), so a checkpoint
	// must serialize them as deleted; once the view creates a snapshot its
	// continuation epoch survives recovery and the flag resets.
	fromActivation bool
}

// FTL is the snapshot-capable translation layer. Not safe for concurrent
// use; the simulation is single-threaded over virtual time.
type FTL struct {
	cfg   Config
	dev   *nand.Device
	sched *sim.Scheduler

	vstore   *bitmap.Store
	tree     *Tree
	presence *epochPresence
	acct     *gcAcct // incremental merged-validity accounting (gcacct.go)

	active *view   // the primary block device
	views  []*view // active + all live activated views

	epochCounter bitmap.Epoch
	epochParent  map[bitmap.Epoch]bitmap.Epoch

	headSeg    int
	headIdx    int
	seq        uint64
	freeSegs   []int
	usedSegs   []int
	segLastSeq []uint64 // newest write sequence per segment (victim aging)

	gcActive    bool
	gcVictim    int // segment a background gcTask currently owns (-1 = none)
	scrubActive bool
	lastScrub   sim.Time // completion time of the last scrub pass

	ckptActive   bool
	lastCkpt     sim.Time               // completion time of the last committed checkpoint
	ckptPins     map[nand.PageAddr]bool // chunk pages the cleaner must preserve
	// mapPins maps each live GTD-referenced translation page to its
	// translation-page index. Like checkpoint chunks, translation pages are
	// valid in no epoch, so the pin is their only cleaning protection; the
	// cleaner copies them forward and re-points the GTD (mappage.go).
	mapPins map[nand.PageAddr]uint64
	anchorID     uint64                 // committed checkpoint generation (0 = none)
	anchorAddrs  []nand.PageAddr        // the committed generation's chunk addresses
	ckptInflight []nand.PageAddr        // chunks of the generation being written
	degraded     bool                   // out-of-space: writes shed until cleaning frees space
	closed       bool
	frozen       bool
	activations  []*Activation // in-flight activations (cleaner keeps them consistent)
	exports      []*Export     // in-flight snapshot exports (ditto)
	stats        Stats

	ws dataPathScratch // reusable buffers for the batched data path (datapath.go)
}

// New formats a fresh device. See ftl.New for the scheduler contract.
func New(cfg Config, sched *sim.Scheduler) (*FTL, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sched == nil {
		sched = sim.NewScheduler()
	}
	f := &FTL{
		cfg:          cfg,
		dev:          nand.New(cfg.Nand),
		sched:        sched,
		vstore:       bitmap.NewStore(cfg.Nand.TotalPages(), cfg.BitmapPageBits),
		tree:         NewTree(),
		epochCounter: 1,
		epochParent:  make(map[bitmap.Epoch]bitmap.Epoch),
		gcVictim:     -1,
		segLastSeq:   make([]uint64, cfg.Nand.Segments),
		presence:     newEpochPresence(cfg.Nand.Segments),
		ckptPins:     make(map[nand.PageAddr]bool),
		mapPins:      make(map[nand.PageAddr]uint64),
	}
	if err := f.vstore.CreateEpoch(1, bitmap.NoParent); err != nil {
		return nil, err
	}
	f.active = &view{fmap: f.newActiveMap(), epoch: 1, writable: true}
	f.views = []*view{f.active}
	for s := cfg.Nand.Segments - 1; s >= 1; s-- {
		f.freeSegs = append(f.freeSegs, s)
	}
	f.headSeg = 0
	f.usedSegs = []int{0}
	f.acct = newGCAcct(f)
	f.acct.track(0, true)
	return f, nil
}

// Device exposes the underlying NAND.
func (f *FTL) Device() *nand.Device { return f.dev }

// Scheduler returns the background-task scheduler.
func (f *FTL) Scheduler() *sim.Scheduler { return f.sched }

// Config returns the configuration.
func (f *FTL) Config() Config { return f.cfg }

// Tree returns the snapshot tree.
func (f *FTL) Tree() *Tree { return f.tree }

// ActiveEpoch returns the epoch currently absorbing primary writes.
func (f *FTL) ActiveEpoch() bitmap.Epoch { return f.active.epoch }

// SectorSize implements blockdev.Device.
func (f *FTL) SectorSize() int { return f.cfg.Nand.SectorSize }

// Sectors implements blockdev.Device.
func (f *FTL) Sectors() int64 { return f.cfg.UserSectors }

// FreeSegments returns the size of the erased-segment pool.
func (f *FTL) FreeSegments() int { return len(f.freeSegs) }

// MappedSectors returns the active view's translation count.
func (f *FTL) MappedSectors() int { return f.active.fmap.Len() }

// ActiveMapMemory returns the active forward map's footprint in bytes.
func (f *FTL) ActiveMapMemory() int64 { return f.active.fmap.MemoryBytes() }

// Stats returns a snapshot of the counters with derived fields refreshed.
func (f *FTL) Stats() Stats {
	s := f.stats
	s.CoWPageCopies = f.vstore.CoWCopies()
	s.MapMemory = f.active.fmap.MemoryBytes()
	s.MapMemoryResident = f.active.fmap.ResidentBytes()
	if c := f.pagedActive(); c != nil {
		cs := c.Stats()
		s.MapCacheHits = cs.Hits
		s.MapCacheMisses = cs.Misses
		s.MapCacheEvictions = cs.Evictions
		s.MapPagesFlushed = cs.Flushed
	}
	s.ValidityMemory = f.vstore.MemoryBytes()
	s.SegmentsSuspect, s.SegmentsRetired = f.dev.HealthCounts()
	s.Degraded = f.degraded
	if s.UserWrites > 0 {
		s.WriteAmplify = float64(s.UserWrites+s.GCCopied) / float64(s.UserWrites)
	}
	return s
}

func (f *FTL) checkIO(lba int64, n int) error {
	if f.closed {
		return ErrClosed
	}
	if n == 0 {
		return fmt.Errorf("%w: zero-length I/O", ErrBadLength)
	}
	if lba < 0 || lba+int64(n) > f.cfg.UserSectors {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, lba, lba+int64(n), f.cfg.UserSectors)
	}
	return nil
}

// Read implements blockdev.Device on the active view. Reads that fail
// mid-run report the sectors completed before the failure in
// UserReads/BytesRead and return the virtual time already consumed.
func (f *FTL) Read(now sim.Time, lba int64, buf []byte) (sim.Time, error) {
	if f.closed {
		return now, ErrClosed
	}
	completed, done, err := f.readVia(f.active, now, lba, buf)
	f.stats.UserReads += int64(completed)
	f.stats.BytesRead += int64(completed) * int64(f.cfg.Nand.SectorSize)
	return done, err
}

// Write implements blockdev.Device on the active view. Like Read, a mid-run
// device failure leaves the completed sectors committed and counted.
func (f *FTL) Write(now sim.Time, lba int64, data []byte) (sim.Time, error) {
	if f.closed {
		return now, ErrClosed
	}
	completed, done, err := f.writeVia(f.active, now, lba, data)
	f.stats.UserWrites += int64(completed)
	f.stats.BytesWritten += int64(completed) * int64(f.cfg.Nand.SectorSize)
	return done, err
}

// allocPage returns the next log-head page, forcing synchronous cleaning
// when the pool is nearly empty. Ordinary allocation honours the rescue
// reserve; when the pool cannot be kept above it the device degrades to
// read-only and the write sheds with ErrOutOfSpace.
func (f *FTL) allocPage(now sim.Time) (nand.PageAddr, sim.Time, error) {
	return f.allocPageReserve(now, f.cfg.dataReserve())
}

// allocPageReserve allocates a log-head page while keeping at least
// `reserve` segments free. Space-freeing operations (snapshot delete and
// deactivate notes) pass a lower reserve so they still work while the
// device is degraded; everything else goes through allocPage.
func (f *FTL) allocPageReserve(now sim.Time, reserve int) (nand.PageAddr, sim.Time, error) {
	if f.headIdx == f.cfg.Nand.PagesPerSegment {
		for len(f.freeSegs) <= reserve {
			var err error
			now, err = f.cleanOnce(now, true)
			if err != nil {
				if errors.Is(err, ErrDeviceFull) {
					f.degraded = true
					f.stats.OutOfSpaceWrites++
					return 0, now, ErrOutOfSpace
				}
				return 0, now, err
			}
		}
		f.degraded = false
		f.headSeg = f.freeSegs[0]
		f.freeSegs = f.freeSegs[1:]
		f.headIdx = 0
		f.usedSegs = append(f.usedSegs, f.headSeg)
		f.acct.track(f.headSeg, true)
		f.maybeScheduleGC(now)
		f.maybeScheduleScrub(now)
		f.maybeScheduleCheckpoint(now)
	}
	addr := f.dev.Addr(f.headSeg, f.headIdx)
	f.headIdx++
	return addr, now, nil
}

// ungetPage rolls back the most recent allocPage/allocPageGC after a failed
// program. Without this the unprogrammed page becomes a permanent hole at
// the log head: SequentialProg devices reject every later program in the
// segment with ErrOutOfOrder, turning one transient fault into a bricked
// log. Only the exact page just handed out is reclaimed, and only if the
// program really did not land.
func (f *FTL) ungetPage(addr nand.PageAddr) {
	if f.headIdx == 0 || addr != f.dev.Addr(f.headSeg, f.headIdx-1) {
		return
	}
	if _, err := f.dev.PageOOB(addr); err == nil {
		return // the program landed after all (e.g. a post-program fault)
	}
	f.headIdx--
}

// allocPageGC is the cleaner's allocation: it never forces a nested clean.
func (f *FTL) allocPageGC(now sim.Time) (nand.PageAddr, sim.Time, error) {
	if f.headIdx == f.cfg.Nand.PagesPerSegment {
		if len(f.freeSegs) == 0 {
			return 0, now, ErrDeviceFull
		}
		f.headSeg = f.freeSegs[0]
		f.freeSegs = f.freeSegs[1:]
		f.headIdx = 0
		f.usedSegs = append(f.usedSegs, f.headSeg)
		f.acct.track(f.headSeg, true)
	}
	addr := f.dev.Addr(f.headSeg, f.headIdx)
	f.headIdx++
	return addr, now, nil
}

// writeNote appends a snapshot note (one metadata block, the paper's 4 KB
// per snapshot operation) and returns its address. Notes are marked valid
// in the active epoch so the cleaner preserves them for crash recovery.
func (f *FTL) writeNote(now sim.Time, typ header.Type, id SnapshotID, epoch bitmap.Epoch) (nand.PageAddr, sim.Time, error) {
	reserve := f.cfg.dataReserve()
	if typ == header.TypeSnapDelete || typ == header.TypeSnapDeactivate {
		// Space-FREEING notes dip below the rescue reserve: deleting a
		// snapshot is how a degraded device recovers, so it must not be
		// refused for the very space it is about to release.
		reserve = 1
	}
	addr, now, err := f.allocPageReserve(now, reserve)
	if err != nil {
		return 0, now, err
	}
	f.seq++
	h := header.Header{Type: typ, LBA: uint64(id), Epoch: uint64(epoch), Seq: f.seq}
	payload := make([]byte, f.cfg.Nand.SectorSize)
	done, err := f.devProgramPage(now, addr, payload, h.Marshal())
	if err != nil {
		f.ungetPage(addr)
		if retry.MediaFailure(err) {
			f.sealHead()
		}
		return 0, now, fmt.Errorf("iosnap: writing %v note: %w", typ, err)
	}
	// Notes age their segment exactly like data: without this the checkpoint
	// segment table's per-segment max sequence (taken from segLastSeq) would
	// undercount a note-tailed segment and recovery's staleness check would
	// diverge from what a scan of the same segment reports.
	f.segLastSeq[f.dev.SegmentOf(addr)] = f.seq
	f.vstore.Set(f.active.epoch, int64(addr))
	f.acct.onViewSet(int64(addr))
	f.presence.add(f.dev.SegmentOf(addr), f.active.epoch)
	return addr, done, nil
}

// Close writes a final synchronous checkpoint (when the device stores
// data, so the chunks can be read back) and marks the FTL closed. The log
// remains the source of truth — a failed or absent checkpoint only means
// the next recovery falls back to the full header scan.
func (f *FTL) Close(now sim.Time) (sim.Time, error) {
	if f.closed {
		return now, ErrClosed
	}
	if f.cfg.Nand.StoreData && !f.ckptActive {
		done, _ := f.writeCheckpoint(now)
		// A failed attempt still consumed real NAND and bus time for the
		// chunks that landed before the error, so the clock advances on
		// both paths. The error itself was recorded in CheckpointErrors
		// and the previous anchor (if any) stays intact; closing proceeds.
		now = done
	}
	f.closed = true
	return now, nil
}

// liveEpochs returns every registered epoch (deleted ones are skipped by
// merge operations internally but still enumerated for per-epoch fixups).
func (f *FTL) liveEpochs() []bitmap.Epoch { return f.vstore.Epochs() }

// ratelimitBudget is a tiny helper so activation code reads clearly.
func ratelimitBudget(ws ratelimit.WorkSleep) *ratelimit.Budget { return ratelimit.NewBudget(ws) }
