package iosnap

import (
	"bytes"
	"errors"
	"testing"

	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

// testConfig: 16 segments × 16 pages × 512 B with payload storage.
func testConfig() Config {
	nc := nand.DefaultConfig()
	nc.SectorSize = 512
	nc.PagesPerSegment = 16
	nc.Segments = 16
	nc.Channels = 2
	nc.StoreData = true
	nc.ReadLatency = 2 * sim.Microsecond
	nc.ProgramLatency = 4 * sim.Microsecond
	nc.EraseLatency = 50 * sim.Microsecond
	cfg := DefaultConfig(nc)
	cfg.GCWindow = 10 * sim.Millisecond
	cfg.BitmapPageBits = 64
	cfg.CoWPageCost = 10 * sim.Microsecond
	return cfg
}

func newTestFTL(t *testing.T) *FTL {
	t.Helper()
	f, err := New(testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func sectorPattern(ss int, lba int64, version byte) []byte {
	b := make([]byte, ss)
	for i := range b {
		b[i] = byte(lba) ^ byte(lba>>8) ^ version ^ byte(i)
	}
	return b
}

// noLimit is an unthrottled activation budget.
var noLimit = ratelimit.WorkSleep{}

func TestBasicWriteRead(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 10; lba++ {
		d, err := f.Write(now, lba, sectorPattern(ss, lba, 1))
		if err != nil {
			t.Fatal(err)
		}
		now = d
	}
	buf := make([]byte, ss)
	for lba := int64(0); lba < 10; lba++ {
		if _, err := f.Read(now, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, 1)) {
			t.Fatalf("LBA %d mismatch", lba)
		}
	}
}

func TestIOErrors(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	if _, err := f.Write(0, -1, make([]byte, ss)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative lba: %v", err)
	}
	if _, err := f.Read(0, 0, make([]byte, ss+1)); !errors.Is(err, ErrBadLength) {
		t.Fatalf("odd buffer: %v", err)
	}
	if _, err := f.Close(0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(0, 0, make([]byte, ss)); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if _, _, err := f.CreateSnapshot(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("snapshot after close: %v", err)
	}
}

func TestSnapshotCreateIsCheap(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 50; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
	}
	snap, done, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	// One note page program (plus bus) regardless of data volume.
	lat := done.Sub(now)
	prog := testConfig().Nand.ProgramLatency
	if lat < prog || lat > 4*prog {
		t.Fatalf("snapshot create latency %v, want about one page program (%v)", lat, prog)
	}
	if snap.ID != 1 || snap.Epoch != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if f.ActiveEpoch() != 2 {
		t.Fatalf("active epoch = %d, want 2", f.ActiveEpoch())
	}
	if f.Tree().Len() != 1 {
		t.Fatal("tree missing node")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 20; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
	}
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite half the LBAs after the snapshot.
	for lba := int64(0); lba < 10; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 2))
	}
	view, now, err := f.ActivateSync(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ss)
	for lba := int64(0); lba < 20; lba++ {
		if _, err := view.Read(now, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, 1)) {
			t.Fatalf("snapshot LBA %d does not show version 1", lba)
		}
		if _, err := f.Read(now, lba, buf); err != nil {
			t.Fatal(err)
		}
		wantVer := byte(1)
		if lba < 10 {
			wantVer = 2
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, wantVer)) {
			t.Fatalf("active LBA %d does not show version %d", lba, wantVer)
		}
	}
}

func TestValidityCoWCountedAndCharged(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 30; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
	}
	_, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats().CoWPageCopies != 0 {
		t.Fatal("creation itself should copy nothing")
	}
	before := now
	now, _ = f.Write(now, 0, sectorPattern(ss, 0, 2))
	st := f.Stats()
	if st.CoWPageCopies == 0 {
		t.Fatal("first overwrite after snapshot should CoW a bitmap page")
	}
	// The CoW cost must appear in the write latency.
	if lat := now.Sub(before); lat < f.cfg.CoWPageCost {
		t.Fatalf("write latency %v does not include CoW cost %v", lat, f.cfg.CoWPageCost)
	}
	// Overwriting an LBA whose bits live in the same (now-owned) page must
	// not copy again.
	copies := st.CoWPageCopies
	_, _ = f.Write(now, 1, sectorPattern(ss, 1, 2))
	// Note: the new block lands at the log head whose page may still CoW
	// once; allow at most one more, then demand stability.
	_, _ = f.Write(now, 2, sectorPattern(ss, 2, 2))
	after := f.Stats().CoWPageCopies
	if after > copies+2 {
		t.Fatalf("CoW copies kept growing: %d -> %d", copies, after)
	}
}

func TestSnapshotDelete(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 10; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
	}
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	done, err := f.DeleteSnapshot(now, snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Sub(now) > 4*testConfig().Nand.ProgramLatency {
		t.Fatal("delete should cost about one note program")
	}
	if _, _, err := f.ActivateSync(done, snap.ID, noLimit, false); !errors.Is(err, ErrSnapshotDeleted) {
		t.Fatalf("activation of deleted snapshot: %v", err)
	}
	if _, err := f.DeleteSnapshot(done, snap.ID); !errors.Is(err, ErrSnapshotDeleted) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := f.DeleteSnapshot(done, 999); !errors.Is(err, ErrNoSuchSnapshot) {
		t.Fatalf("delete unknown: %v", err)
	}
	if f.Tree().Live() != 0 {
		t.Fatal("live snapshot count wrong")
	}
}

func TestDeletedSnapshotBlocksReclaimed(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	// Fill a good chunk, snapshot, overwrite everything (snapshot holds the
	// old copies), delete the snapshot, churn: the cleaner must reclaim the
	// snapshot-only blocks and the device must not fill up.
	for lba := int64(0); lba < 100; lba++ {
		f.sched.RunUntil(now)
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
	}
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	for lba := int64(0); lba < 100; lba++ {
		f.sched.RunUntil(now)
		d, err := f.Write(now, lba, sectorPattern(ss, lba, 2))
		if err != nil {
			t.Fatal(err)
		}
		now = d
	}
	if now, err = f.DeleteSnapshot(now, snap.ID); err != nil {
		t.Fatal(err)
	}
	// Churn: without reclamation of the deleted snapshot's blocks this
	// would exhaust the device (100 live + 100 snapshot + churn > 256).
	for i := 0; i < 300; i++ {
		f.sched.RunUntil(now)
		lba := int64(i % 100)
		d, err := f.Write(now, lba, sectorPattern(ss, lba, byte(3+i/100)))
		if err != nil {
			t.Fatalf("churn write %d: %v", i, err)
		}
		now = d
	}
	now = f.sched.Drain(now)
	buf := make([]byte, ss)
	if _, err := f.Read(now, 0, buf); err != nil {
		t.Fatal(err)
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("no cleaning happened")
	}
}

func TestManySnapshotsDataPathUnaffected(t *testing.T) {
	// The paper's "unlimited snapshots" goal: the write path must not slow
	// down as dormant snapshots accumulate.
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	lat0 := sim.Duration(0)
	for round := 0; round < 30; round++ {
		start := now
		d, err := f.Write(now, int64(round%50), sectorPattern(ss, int64(round%50), byte(round)))
		if err != nil {
			t.Fatal(err)
		}
		now = d
		if round == 0 {
			lat0 = now.Sub(start)
		}
		if _, d2, err := f.CreateSnapshot(now); err != nil {
			t.Fatal(err)
		} else {
			now = d2
		}
	}
	if f.Tree().Live() != 30 {
		t.Fatalf("live snapshots = %d", f.Tree().Live())
	}
	// A write with 30 dormant snapshots: same order of magnitude (allow CoW
	// of at most a couple of bitmap pages on top).
	start := now
	if _, err := f.Write(now, 51, sectorPattern(ss, 51, 9)); err != nil {
		t.Fatal(err)
	}
	d, _ := f.Write(start, 51, sectorPattern(ss, 51, 9))
	lat := d.Sub(start)
	if lat > lat0+3*f.cfg.CoWPageCost+20*sim.Microsecond {
		t.Fatalf("write latency grew with snapshot count: %v vs %v", lat, lat0)
	}
}

func TestTrimRespectsSnapshots(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	now, _ = f.Write(now, 5, sectorPattern(ss, 5, 1))
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = f.Trim(now, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat([]byte{0xFF}, ss)
	if _, err := f.Read(now, 5, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("trimmed sector still readable on active view")
		}
	}
	view, now, err := f.ActivateSync(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := view.Read(now, 5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, 5, 1)) {
		t.Fatal("trim destroyed snapshotted data")
	}
}

func TestStatsAndAccessors(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now, _ := f.Write(0, 0, make([]byte, ss))
	if _, err := f.Read(now, 0, make([]byte, ss)); err != nil {
		t.Fatal(err)
	}
	snap, now, _ := f.CreateSnapshot(now)
	_ = snap
	st := f.Stats()
	if st.UserWrites != 1 || st.UserReads != 1 || st.SnapshotCreates != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if f.Sectors() != f.cfg.UserSectors || f.SectorSize() != 512 {
		t.Fatal("accessors wrong")
	}
	if len(f.Snapshots()) != 1 {
		t.Fatal("Snapshots() wrong")
	}
	if f.MappedSectors() != 1 {
		t.Fatal("MappedSectors wrong")
	}
}

func TestLineageAndDepth(t *testing.T) {
	f := newTestFTL(t)
	now := sim.Time(0)
	s1, now, _ := f.CreateSnapshot(now)
	s2, now, _ := f.CreateSnapshot(now)
	s3, _, _ := f.CreateSnapshot(now)
	if s1.Depth() != 0 || s2.Depth() != 1 || s3.Depth() != 2 {
		t.Fatalf("depths = %d %d %d", s1.Depth(), s2.Depth(), s3.Depth())
	}
	lin := s3.Lineage()
	if len(lin) != 3 || lin[0] != s1.Epoch || lin[2] != s3.Epoch {
		t.Fatalf("lineage = %v", lin)
	}
}
