package iosnap

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"iosnap/internal/faultinject"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
	"iosnap/internal/xport"
)

// The torture harness drives a randomized workload — writes, trims, snapshot
// create/delete, background activations, view writes, deactivations, forced
// cleans — against an FTL whose device may have a fault plan armed, and
// asserts after every operation that either the operation reported an error
// or the full content model still matches, and periodically (plus after
// every crash recovery) that CheckInvariants holds. Everything is driven by
// explicit seeds: the same TortureOptions reproduce the same run, faults and
// all.

// TortureOptions configures one torture run.
type TortureOptions struct {
	Seed  uint64 // workload RNG seed
	Steps int    // operations to attempt (default 800)
	Space int64  // LBA working-set size (default 100)

	// Plan, when non-nil, is armed on the device before the workload starts.
	// When a crash rule fires the harness power-cycles: the in-RAM FTL and
	// scheduler are abandoned, the plan is disarmed, and the device is
	// crash-recovered with Recover.
	Plan *faultinject.Plan

	// Replan, when non-nil, supplies a fresh fault plan after each
	// power-cycle (cycle counts from 1), letting one run take multiple
	// crash/recover cycles; returning nil leaves the remainder of the run
	// fault-free. Without Replan the first crash permanently disarms faults
	// (the original single-crash behaviour).
	Replan func(cycle int) *faultinject.Plan

	// CheckEvery runs CheckInvariants after this many steps (default 100).
	CheckEvery int

	// ActivationLimit rate-limits background activations so they stay
	// in-flight across workload steps (zero = unthrottled, activations
	// complete almost immediately).
	ActivationLimit ratelimit.WorkSleep

	// SnapshotChurn shifts the operation mix toward snapshot-lifecycle
	// storms: more creates (the live-snapshot cap rises from 3 to 6), more
	// deletes, more activate/deactivate cycles, more forced cleans, plus
	// scrub passes. Every one of those changes the epoch set or the view
	// membership, so churn runs hammer the cleaner's generation-stamped
	// cache invalidation (gcacct.go) across GC, rescue, and scrub.
	SnapshotChurn bool

	// ExportChurn adds snapshot replication to a churn-style mix: a band of
	// steps ships a live snapshot to a fault-free destination device through
	// the xport transport (incremental against the previous generation when
	// it is still live) and bit-verifies the replica against the frozen
	// model. Export reads run on the SOURCE device with the fault plan
	// armed, so injected transient and corrupt-data read faults hit the
	// replication path itself.
	ExportChurn bool

	// MapThrash widens the data bands (writes, trims, reads) while keeping
	// snapshot churn, so a run with a tiny MapCachePages config and a large
	// Space constantly faults, dirties, flushes, and evicts translation
	// pages — with checkpoints, cleans, and crash replans landing mid-churn.
	// The flag only changes the mix when set, so every existing seeded run
	// draws its historical operation sequence.
	MapThrash bool
}

// opCuts are the cumulative percentile cut-points of the operation mix; an
// op draw in [0,100) lands in the first band it is below (subject to each
// band's guard, falling through to later bands like the switch always did).
type opCuts struct {
	write, trim, create, del, activate, viewWrite, deact, force, scrub, repl int
	maxSnaps                                                                 int
}

func (o TortureOptions) cuts() opCuts {
	if o.MapThrash {
		return opCuts{write: 30, trim: 38, create: 50, del: 60, activate: 68,
			viewWrite: 72, deact: 76, force: 82, scrub: 86, repl: 86, maxSnaps: 6}
	}
	if o.ExportChurn {
		return opCuts{write: 20, trim: 26, create: 42, del: 54, activate: 64,
			viewWrite: 68, deact: 74, force: 82, scrub: 86, repl: 94, maxSnaps: 6}
	}
	if o.SnapshotChurn {
		return opCuts{write: 20, trim: 26, create: 44, del: 58, activate: 70,
			viewWrite: 74, deact: 80, scrub: 96, repl: 96, force: 90, maxSnaps: 6}
	}
	// The historical mix; scrub == force makes the scrub band empty so
	// seeded non-churn runs draw the exact same operation sequence as ever.
	return opCuts{write: 45, trim: 52, create: 60, del: 66, activate: 74,
		viewWrite: 78, deact: 83, force: 88, scrub: 88, repl: 88, maxSnaps: 3}
}

// TortureReport summarizes a torture run.
type TortureReport struct {
	Steps        int                 // operations attempted
	OpErrors     int64               // operations that returned an error (faults doing their job)
	Crashes      int64               // power losses taken
	Recoveries   int64               // successful crash recoveries
	Checks       int64               // CheckInvariants passes
	Activations  int64               // background activations started
	Replications int64               // snapshot replications committed and bit-verified
	Fired        []faultinject.Fired // accumulated across all armed plans
	FinalStats   Stats
}

func (r *TortureReport) String() string {
	return fmt.Sprintf("steps=%d opErrors=%d crashes=%d recoveries=%d checks=%d repls=%d gcErrors=%d torn=%d",
		r.Steps, r.OpErrors, r.Crashes, r.Recoveries, r.Checks, r.Replications,
		r.FinalStats.GCErrors, r.FinalStats.TornPagesSkipped)
}

// torturePattern fills a sector deterministically from (lba, version).
func torturePattern(ss int, lba int64, v byte) []byte {
	b := make([]byte, ss)
	for i := range b {
		b[i] = byte(int64(i)+lba) ^ v
	}
	return b
}

// tortureRun owns the mutable state of one run.
type tortureRun struct {
	opt  TortureOptions
	cfg  Config
	f    *FTL
	rng  *sim.RNG
	now  sim.Time
	rep  *TortureReport
	ss   int
	snap map[SnapshotID]map[int64]byte // frozen content per live snapshot
	mod  map[int64]byte                // active-view content
	act  *Activation                   // in-flight background activation
	view *View                         // one live activated view
	vmod map[int64]byte                // its content model

	dst      *FTL        // replication destination (fault-free, lazily built)
	repl     *Replicator // replication driver; survives power cycles
	lastRepl SnapshotID  // snapshot whose image is the committed generation

	// plan is the currently armed fault plan (starts as opt.Plan, swapped by
	// opt.Replan after each power-cycle; nil once faults are done).
	plan *faultinject.Plan

	// crashHandled is set once the current plan's crash has been
	// power-cycled: its Crashed() stays true forever, but only the first
	// observation demands a recovery. It resets when Replan arms a fresh
	// plan for the next cycle.
	crashHandled bool
}

// Torture runs the randomized fault workload and returns its report. A
// non-nil error means a real bug: an invariant violation, content served
// wrongly without an error, or a failed crash recovery — never a fault
// "working as injected".
func Torture(cfg Config, opt TortureOptions) (*TortureReport, error) {
	if opt.Steps <= 0 {
		opt.Steps = 800
	}
	if opt.Space <= 0 {
		opt.Space = 100
	}
	if opt.CheckEvery <= 0 {
		opt.CheckEvery = 100
	}
	f, err := New(cfg, nil)
	if err != nil {
		return nil, err
	}
	t := &tortureRun{
		opt:  opt,
		cfg:  cfg,
		f:    f,
		rng:  sim.NewRNG(opt.Seed),
		rep:  &TortureReport{},
		ss:   f.SectorSize(),
		snap: make(map[SnapshotID]map[int64]byte),
		mod:  make(map[int64]byte),
	}
	t.plan = opt.Plan
	if t.plan != nil {
		t.plan.Arm(f.dev)
	}
	err = t.run()
	t.retirePlan()
	t.rep.FinalStats = t.f.Stats()
	return t.rep, err
}

// retirePlan disarms the current plan, banking its fired records into the
// cumulative report.
func (t *tortureRun) retirePlan() {
	if t.plan == nil {
		return
	}
	t.rep.Fired = append(t.rep.Fired, t.plan.Fired()...)
	t.plan.Disarm(t.f.dev)
	t.plan = nil
}

func (t *tortureRun) crashed() bool {
	return !t.crashHandled && t.plan != nil && t.plan.Crashed()
}

// opErr tallies an operation error; a crash is handled by the step loop.
func (t *tortureRun) opErr() { t.rep.OpErrors++ }

func (t *tortureRun) run() error {
	for step := 0; step < t.opt.Steps; step++ {
		t.rep.Steps++
		t.f.sched.RunUntil(t.now)
		if t.crashed() {
			if err := t.powerCycle(); err != nil {
				return fmt.Errorf("step %d: %w", step, err)
			}
			continue
		}
		t.reapActivation()
		if err := t.step(step); err != nil {
			return fmt.Errorf("step %d: %w", step, err)
		}
		if t.crashed() {
			if err := t.powerCycle(); err != nil {
				return fmt.Errorf("step %d: %w", step, err)
			}
			continue
		}
		if step%t.opt.CheckEvery == t.opt.CheckEvery-1 {
			t.now = t.f.sched.Drain(t.now)
			if t.crashed() {
				if err := t.powerCycle(); err != nil {
					return fmt.Errorf("step %d: %w", step, err)
				}
				continue
			}
			if err := t.check(); err != nil {
				return fmt.Errorf("step %d: %w", step, err)
			}
		}
	}
	// Final settle: drain, recover once more if a late fault crashed us,
	// then verify everything.
	t.now = t.f.sched.Drain(t.now)
	if t.crashed() {
		if err := t.powerCycle(); err != nil {
			return err
		}
	}
	if err := t.check(); err != nil {
		return err
	}
	return t.verifySnapshots()
}

// step performs one random operation. Any error return is a harness bug;
// injected faults are absorbed as OpErrors.
func (t *tortureRun) step(step int) error {
	f := t.f
	cut := t.opt.cuts()
	switch op := t.rng.Intn(100); {
	case op < cut.write: // active write
		lba := t.rng.Int63n(t.opt.Space)
		v := byte(step%251 + 1)
		done, err := f.Write(t.now, lba, torturePattern(t.ss, lba, v))
		if err != nil {
			t.opErr()
			return nil
		}
		if t.crashed() {
			// The program landed torn and power died before the completion
			// ever reached the host: the write was never acknowledged.
			t.opErr()
			return nil
		}
		t.mod[lba] = v
		t.now = done
	case op < cut.trim: // trim
		lba := t.rng.Int63n(t.opt.Space)
		done, err := f.Trim(t.now, lba, 1)
		if err != nil {
			t.opErr()
			return nil
		}
		delete(t.mod, lba)
		t.now = done
	case op < cut.create && len(t.snap) < cut.maxSnaps: // snapshot create
		snap, done, err := f.CreateSnapshot(t.now)
		if err != nil {
			t.opErr()
			return nil
		}
		if t.crashed() {
			t.opErr() // torn create note: never acknowledged
			return nil
		}
		t.now = done
		frozen := make(map[int64]byte, len(t.mod))
		for k, v := range t.mod {
			frozen[k] = v
		}
		t.snap[snap.ID] = frozen
	case op < cut.del && len(t.snap) > 0: // snapshot delete
		id := t.pickSnap()
		if t.view != nil && t.view.Snapshot().ID == id {
			return nil // keep the activated snapshot's model simple
		}
		if t.act != nil && !t.act.Ready() && t.act.Snapshot().ID == id {
			return nil
		}
		done, err := f.DeleteSnapshot(t.now, id)
		if err != nil {
			t.opErr()
			return nil
		}
		if t.crashed() {
			t.opErr() // torn delete note: the snapshot survives recovery
			return nil
		}
		t.now = done
		delete(t.snap, id)
	case op < cut.activate && len(t.snap) > 0 && t.act == nil && t.view == nil: // activate
		id := t.pickSnap()
		writable := t.rng.Intn(2) == 0
		act, done, err := f.Activate(t.now, id, t.opt.ActivationLimit, writable)
		if err != nil {
			t.opErr()
			return nil
		}
		if t.crashed() {
			t.opErr() // torn activate note: the activation dies with the host
			return nil
		}
		t.now = done
		t.act = act
		t.rep.Activations++
	case op < cut.viewWrite && t.view != nil: // view write
		if !t.view.Writable() {
			return nil
		}
		lba := t.rng.Int63n(t.opt.Space)
		v := byte(step%250 + 2)
		done, err := t.view.Write(t.now, lba, torturePattern(t.ss, lba, v))
		if err != nil {
			t.opErr()
			return nil
		}
		if t.crashed() {
			t.opErr()
			return nil
		}
		t.vmod[lba] = v
		t.now = done
	case op < cut.deact && t.view != nil: // deactivate
		done, err := t.view.Deactivate(t.now)
		if err != nil {
			t.opErr()
			return nil
		}
		if t.crashed() {
			t.opErr() // the view dies with the crash regardless
			return nil
		}
		t.now = done
		t.view, t.vmod = nil, nil
	case op < cut.force: // forced clean of a random used, non-head segment
		used := f.UsedSegments()
		if len(used) < 2 || f.CleaningActive() {
			return nil
		}
		seg := used[t.rng.Intn(len(used))]
		if seg == f.headSeg {
			return nil
		}
		if err := f.ForceClean(t.now, seg); err != nil {
			t.opErr()
			return nil
		}
	case op < cut.scrub: // scrub pass (churn mix only)
		f.StartScrub(t.now)
	case op < cut.repl && len(t.snap) > 0: // replicate a snapshot (export-churn mix)
		return t.replicate()
	default: // verify one active LBA
		lba := t.rng.Int63n(t.opt.Space)
		buf := make([]byte, t.ss)
		done, err := f.Read(t.now, lba, buf)
		if err != nil {
			t.opErr()
			return nil
		}
		t.now = done
		if v, ok := t.mod[lba]; ok && !bytes.Equal(buf, torturePattern(t.ss, lba, v)) {
			return fmt.Errorf("torture: LBA %d served wrong content without error", lba)
		}
	}
	return nil
}

// replicate ships one live snapshot to the fault-free destination device
// and bit-verifies the replica against the frozen model. The export reads
// run with the fault plan armed, so the replication path absorbs (or
// surfaces, as OpErrors) whatever the plan injects; a committed
// replication must serve the model exactly or the run fails.
func (t *tortureRun) replicate() error {
	if t.repl == nil {
		dst, err := New(t.cfg, nil)
		if err != nil {
			return fmt.Errorf("torture: creating replica device: %w", err)
		}
		t.dst = dst
		t.repl = &Replicator{Src: t.f, Dst: dst, Policy: t.cfg.Retry}
	}
	id := t.pickSnap()
	base := SnapshotID(0)
	if t.lastRepl != 0 && t.repl.Generation() != nil {
		if _, live := t.snap[t.lastRepl]; live {
			base = t.lastRepl
		}
	}
	_, done, err := t.repl.Replicate(t.now, id, base)
	if errors.Is(err, xport.ErrWrongTransfer) {
		// A journal from an interrupted transfer of a different snapshot:
		// explicitly drop it and restart this transfer fresh.
		t.repl.Restore(t.repl.Generation(), nil)
		_, done, err = t.repl.Replicate(t.now, id, base)
	}
	if err != nil {
		if t.crashed() || t.planArmed() || errors.Is(err, ErrOutOfSpace) {
			t.opErr()
			return nil
		}
		return fmt.Errorf("torture: replicating snapshot %d: %w", id, err)
	}
	t.now = done
	t.lastRepl = id
	t.rep.Replications++
	// The destination runs its own background work (cleaning) off-line.
	t.now = t.dst.Scheduler().Drain(t.now)
	// Bit-verify the replica against the frozen model. Acknowledged frozen
	// content must be served exactly; no fault excuse applies — the plan is
	// armed on the source, and end-to-end integrity is the whole point.
	buf := make([]byte, t.ss)
	frozen := t.snap[id]
	for _, lba := range sortedLBAs(frozen) {
		if _, err := t.dst.Read(t.now, lba, buf); err != nil {
			return fmt.Errorf("torture: replica read LBA %d: %w", lba, err)
		}
		if !bytes.Equal(buf, torturePattern(t.ss, lba, frozen[lba])) {
			return fmt.Errorf("torture: replica of snapshot %d LBA %d content mismatch", id, lba)
		}
	}
	return nil
}

func (t *tortureRun) pickSnap() SnapshotID {
	ids := t.sortedSnapIDs()
	return ids[t.rng.Intn(len(ids))]
}

// sortedSnapIDs returns the live snapshot IDs ascending. Model sweeps and
// RNG draws must not depend on Go's randomized map order: every device
// operation's (order, address) has to be a pure function of the seeds, or
// probabilistic fault rules would fire at run-dependent addresses.
func (t *tortureRun) sortedSnapIDs() []SnapshotID {
	ids := make([]SnapshotID, 0, len(t.snap))
	for id := range t.snap {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sortedLBAs returns m's keys ascending, for the same reason.
func sortedLBAs(m map[int64]byte) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// reapActivation publishes a finished background activation as the live view.
func (t *tortureRun) reapActivation() {
	if t.act == nil || !t.act.Ready() {
		return
	}
	act := t.act
	t.act = nil
	view, err := act.View()
	if err != nil {
		t.opErr() // a propagated scan fault, by design
		return
	}
	t.view = view
	src := t.snap[act.Snapshot().ID]
	t.vmod = make(map[int64]byte, len(src))
	for k, v := range src {
		t.vmod[k] = v
	}
}

// powerCycle models the crash: RAM state (FTL, scheduler, views, in-flight
// activations) is abandoned, power is restored (the plan detaches), and the
// device is recovered from its log. Writes acknowledged before the crash
// must all survive; views and un-noted view writes die by design.
func (t *tortureRun) powerCycle() error {
	t.rep.Crashes++
	t.crashHandled = true
	t.retirePlan()
	t.f.sched.Reset()
	t.act, t.view, t.vmod = nil, nil, nil
	f2, now2, err := Recover(t.cfg, t.f.dev, sim.NewScheduler(), t.now)
	if err != nil {
		return fmt.Errorf("torture: crash recovery failed: %w", err)
	}
	t.f = f2
	t.now = now2
	t.rep.Recoveries++
	// Replication state (destination contents, committed generation, any
	// receive journal) survives the source's crash; only the source handle
	// is re-wired to the recovered FTL.
	if t.repl != nil {
		t.repl.Src = f2
	}
	// Snapshots whose create note never became durable are gone; ones that
	// were acknowledged must have survived.
	for id := range t.snap {
		s, ok := f2.tree.Lookup(id)
		if !ok || s.Deleted {
			return fmt.Errorf("torture: acknowledged snapshot %d lost by recovery", id)
		}
	}
	if err := t.check(); err != nil {
		return err
	}
	// Arm the next cycle's plan, if the caller wants more crashes.
	if t.opt.Replan != nil {
		if p := t.opt.Replan(int(t.rep.Crashes)); p != nil {
			t.plan = p
			t.plan.Arm(t.f.dev)
			t.crashHandled = false
		}
	}
	return nil
}

// check asserts the invariants and the active content model.
func (t *tortureRun) check() error {
	if err := t.f.CheckInvariants(); err != nil {
		return err
	}
	t.rep.Checks++
	buf := make([]byte, t.ss)
	for _, lba := range sortedLBAs(t.mod) {
		v := t.mod[lba]
		if _, err := t.f.Read(t.now, lba, buf); err != nil {
			if t.crashed() {
				return nil // a fresh fault mid-verify; the step loop recovers
			}
			if t.planArmed() {
				t.opErr() // an injected read error; skip this LBA's compare
				continue
			}
			return fmt.Errorf("torture: reading LBA %d: %w", lba, err)
		}
		if !bytes.Equal(buf, torturePattern(t.ss, lba, v)) {
			return fmt.Errorf("torture: LBA %d content mismatch", lba)
		}
	}
	if t.view != nil {
		for _, lba := range sortedLBAs(t.vmod) {
			v := t.vmod[lba]
			if _, err := t.view.Read(t.now, lba, buf); err != nil {
				if t.crashed() {
					return nil
				}
				if t.planArmed() {
					t.opErr()
					continue
				}
				return fmt.Errorf("torture: view read LBA %d: %w", lba, err)
			}
			if !bytes.Equal(buf, torturePattern(t.ss, lba, v)) {
				return fmt.Errorf("torture: view LBA %d content mismatch", lba)
			}
		}
	}
	return nil
}

// planArmed reports whether the fault plan is still attached to the device,
// i.e. verification reads themselves can draw injected errors.
func (t *tortureRun) planArmed() bool {
	return t.plan != nil && t.f.dev.FaultHook() == t.plan
}

// verifySnapshots activates every live snapshot (unthrottled, faults
// disarmed by the caller at this point unless the plan never crashed) and
// verifies its frozen content.
func (t *tortureRun) verifySnapshots() error {
	t.retirePlan()
	if t.view != nil {
		if _, err := t.view.Deactivate(t.now); err != nil && !t.crashed() {
			if !errors.Is(err, ErrOutOfSpace) {
				return fmt.Errorf("torture: final deactivate: %w", err)
			}
			t.opErr() // genuinely exhausted: the note cannot be logged
		}
		t.view, t.vmod = nil, nil
	}
	buf := make([]byte, t.ss)
	for _, id := range t.sortedSnapIDs() {
		frozen := t.snap[id]
		view, done, err := t.f.ActivateSync(t.now, id, ratelimit.WorkSleep{}, false)
		if err != nil {
			if errors.Is(err, ErrOutOfSpace) {
				// A degraded device cannot log the activation note; the
				// snapshot's data is intact but unverifiable this run.
				t.opErr()
				continue
			}
			return fmt.Errorf("torture: final activation of snapshot %d: %w", id, err)
		}
		t.now = done
		for _, lba := range sortedLBAs(frozen) {
			v := frozen[lba]
			if _, err := view.Read(t.now, lba, buf); err != nil {
				return fmt.Errorf("torture: snapshot %d LBA %d: %w", id, lba, err)
			}
			if !bytes.Equal(buf, torturePattern(t.ss, lba, v)) {
				return fmt.Errorf("torture: snapshot %d LBA %d content mismatch", id, lba)
			}
		}
		if _, err := view.Deactivate(t.now); err != nil {
			if !errors.Is(err, ErrOutOfSpace) {
				return fmt.Errorf("torture: snapshot %d deactivate: %w", id, err)
			}
			t.opErr()
		}
	}
	return nil
}
