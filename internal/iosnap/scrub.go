package iosnap

import (
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

// The background scrubber walks the used segments oldest-first (the log
// order of usedSegs), read-verifying every programmed page's OOB header and
// rescuing + retiring any segment found (or already marked) suspect. Each
// pass is a single sim.Task: it finishes after one walk rather than
// rescheduling itself forever, so Scheduler.Drain terminates; the next pass
// is re-armed opportunistically from the allocation path once ScrubInterval
// has elapsed (or immediately when a suspect segment is waiting). Scans are
// paced by the same work/sleep budget activation throttling uses, so a scrub
// shares the device with foreground I/O instead of monopolizing it.

// maybeScheduleScrub arms a scrub pass when scrubbing is enabled and either
// the interval has elapsed or a suspect segment awaits rescue.
func (f *FTL) maybeScheduleScrub(now sim.Time) {
	if f.scrubActive || f.closed || f.cfg.ScrubInterval <= 0 {
		return
	}
	suspect, _ := f.dev.HealthCounts()
	if suspect == 0 && now.Sub(f.lastScrub) < f.cfg.ScrubInterval {
		return
	}
	f.StartScrub(now)
}

// StartScrub arms one scrub pass immediately, regardless of ScrubInterval.
// It reports whether a pass was started (false when one is already running
// or the device is closed).
func (f *FTL) StartScrub(now sim.Time) bool {
	if f.scrubActive || f.closed {
		return false
	}
	f.scrubActive = true
	f.sched.Schedule(now, &scrubTask{
		f:      f,
		segs:   append([]int(nil), f.usedSegs...),
		budget: ratelimit.NewBudget(f.cfg.ScrubLimit),
	})
	return true
}

// ScrubActive reports whether a scrub pass is in flight.
func (f *FTL) ScrubActive() bool { return f.scrubActive }

// scrubTask is one paced pass over a snapshot of the used-segment list.
type scrubTask struct {
	f      *FTL
	segs   []int
	cursor int
	budget *ratelimit.Budget
}

// Name implements sim.Task.
func (t *scrubTask) Name() string { return "iosnap-scrub" }

// Run implements sim.Task: verify segments until the budget exhausts, then
// sleep; finish the pass after one walk.
func (t *scrubTask) Run(now sim.Time) (sim.Time, bool) {
	f := t.f
	if f.closed {
		f.scrubActive = false
		return 0, true
	}
	for t.cursor < len(t.segs) {
		seg := t.segs[t.cursor]
		t.cursor++
		if seg == f.headSeg || seg == f.gcVictim || !f.segInUse(seg) {
			// The head is still being appended; a segment mid-clean belongs
			// to the cleaner; a since-freed segment has nothing to verify.
			continue
		}
		start := now
		if f.dev.SegmentHealth(seg) == nand.Healthy {
			// Read-verify: the scan exercises every programmed page's OOB
			// read path; a permanent failure marks the segment suspect via
			// the media wrapper, and the rescue below picks it up.
			if _, done, err := f.devScanSegmentOOB(now, seg); err == nil {
				now = done
			}
		}
		f.stats.ScrubSegments++
		if f.dev.SegmentHealth(seg) == nand.Suspect {
			// Rescue failures (e.g. ErrDeviceFull) leave the segment suspect
			// for the cleaner or the next pass; its data is still readable.
			if done, err := f.rescueSegment(now, seg); err == nil {
				now = done
				f.stats.ScrubRescues++
			}
		}
		if sleep, exhausted := t.budget.Charge(now.Sub(start)); exhausted && t.cursor < len(t.segs) {
			return now.Add(sleep), false
		}
	}
	f.scrubActive = false
	f.lastScrub = now
	f.stats.ScrubPasses++
	f.stats.ScrubLastAt = now
	return 0, true
}

// segInUse reports whether seg is currently in the used list.
func (f *FTL) segInUse(seg int) bool {
	for _, s := range f.usedSegs {
		if s == seg {
			return true
		}
	}
	return false
}
