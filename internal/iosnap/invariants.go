package iosnap

import (
	"fmt"
	"sort"

	"iosnap/internal/bitmap"
	"iosnap/internal/header"
	"iosnap/internal/nand"
)

// CheckInvariants validates the FTL's cross-structure invariants and returns
// the first violation found (nil when all hold). It is the exported form of
// the checks the randomized stress tests always ran, promoted so the torture
// harness and `iosnapctl check` can assert consistency after fault injection
// and crash recovery:
//
//  1. every view's forward-map entry points at a programmed page whose OOB
//     header is a data header carrying that LBA, stamped with an epoch in
//     the view's lineage, with the view-epoch validity bit set; no two LBAs
//     of one view share a physical page;
//  2. merged validity agrees with live OOB state: every page valid in any
//     live epoch is programmed with a parseable header, its stamping epoch
//     is summarized in the segment's presence map, and every active-valid
//     data page is referenced by the active forward map;
//  3. the snapshot tree and the epoch-parent chains are consistent: every
//     live snapshot's epoch exists in the validity store, parent/child
//     links are mutual, and each snapshot's epoch reaches its parent's
//     epoch by walking the epoch-parent chain;
//  4. usedSegs and freeSegs partition the non-retired segments with no
//     duplicates, free segments hold no programmed pages and no presence
//     summary, and the log head lives in a used segment;
//  5. retired segments are fully out of service: in neither pool, never the
//     log head, with no block valid in any live epoch (their data was
//     rescued before retirement) and no presence summary;
//  6. checkpoint pins are exactly the committed anchor's chunks plus the
//     in-flight generation's, each pinning a programmed page whose header
//     is a checkpoint-chunk type, and the device anchor mirrors the
//     committed generation.
//
// The checker inspects RAM state and raw page contents only (no timed device
// operations), so it is safe to run at any quiesced point — after
// Scheduler.Drain, or after Recover.
func (f *FTL) CheckInvariants() error {
	if err := f.checkViews(); err != nil {
		return err
	}
	if err := f.checkValidity(); err != nil {
		return err
	}
	if err := f.checkTree(); err != nil {
		return err
	}
	if err := f.checkPools(); err != nil {
		return err
	}
	if err := f.checkCheckpointPins(); err != nil {
		return err
	}
	if err := f.checkMapPins(); err != nil {
		return err
	}
	return f.checkGCAccounting()
}

// checkMapPins validates the paged map's cleaner-protection state: the pin
// set and the GTD must be a bijection (pin addr ↔ directory addr), and
// every pinned page must hold a parseable translation-page header whose
// LBA field names the pinned index.
func (f *FTL) checkMapPins() error {
	c := f.pagedActive()
	if c == nil {
		if len(f.mapPins) != 0 {
			return fmt.Errorf("invariant: %d translation-page pins with no paged map", len(f.mapPins))
		}
		return nil
	}
	for a, idx := range f.mapPins {
		want, ok := c.AddrOf(idx)
		if !ok {
			return fmt.Errorf("invariant: pinned translation page %d (addr %d) not in the GTD", idx, a)
		}
		if want != uint64(a) {
			return fmt.Errorf("invariant: translation page %d pinned at %d but GTD says %d", idx, a, want)
		}
		oob, err := f.dev.PageOOB(a)
		if err != nil {
			return fmt.Errorf("invariant: pinned translation page %d not programmed: %v", a, err)
		}
		h, err := header.Unmarshal(oob)
		if err != nil {
			return fmt.Errorf("invariant: pinned translation page %d header: %v", a, err)
		}
		if h.Type != header.TypeMapPage {
			return fmt.Errorf("invariant: pinned page %d holds %v, not a translation page", a, h.Type)
		}
		if h.LBA != idx {
			return fmt.Errorf("invariant: pinned page %d header names translation page %d, pin says %d", a, h.LBA, idx)
		}
	}
	for _, ent := range c.GTDEntries() {
		if _, ok := f.mapPins[nand.PageAddr(ent.Addr)]; !ok {
			return fmt.Errorf("invariant: GTD page %d at %d not pinned", ent.Idx, ent.Addr)
		}
	}
	return nil
}

// checkCheckpointPins validates the cleaner-protection state of checkpoint
// chunks: pins and the anchor/in-flight chunk lists must name the same
// pages, every pinned page must hold a parseable checkpoint-chunk header,
// and the device anchor must mirror the committed generation.
func (f *FTL) checkCheckpointPins() error {
	named := make(map[nand.PageAddr]bool, len(f.anchorAddrs)+len(f.ckptInflight))
	for _, a := range f.anchorAddrs {
		named[a] = true
		if !f.ckptPins[a] {
			return fmt.Errorf("invariant: anchor chunk %d not pinned", a)
		}
	}
	for _, a := range f.ckptInflight {
		named[a] = true
		if !f.ckptPins[a] {
			return fmt.Errorf("invariant: in-flight checkpoint chunk %d not pinned", a)
		}
	}
	for a := range f.ckptPins {
		if !named[a] {
			return fmt.Errorf("invariant: pinned page %d named by neither the anchor nor the in-flight generation", a)
		}
		oob, err := f.dev.PageOOB(a)
		if err != nil {
			return fmt.Errorf("invariant: pinned page %d not programmed: %v", a, err)
		}
		h, err := header.Unmarshal(oob)
		if err != nil {
			return fmt.Errorf("invariant: pinned page %d header: %v", a, err)
		}
		if !h.Type.IsCheckpoint() {
			return fmt.Errorf("invariant: pinned page %d holds %v, not a checkpoint chunk", a, h.Type)
		}
	}
	anchor := f.dev.Anchor()
	if len(f.anchorAddrs) > 0 {
		if anchor == nil {
			return fmt.Errorf("invariant: committed checkpoint %d has no device anchor", f.anchorID)
		}
		if anchor.ID != f.anchorID || len(anchor.Addrs) != len(f.anchorAddrs) {
			return fmt.Errorf("invariant: device anchor (%d, %d chunks) diverges from committed checkpoint (%d, %d chunks)",
				anchor.ID, len(anchor.Addrs), f.anchorID, len(f.anchorAddrs))
		}
		for i, a := range f.anchorAddrs {
			if anchor.Addrs[i] != a {
				return fmt.Errorf("invariant: device anchor chunk %d is %d, FTL records %d", i, anchor.Addrs[i], a)
			}
		}
	}
	return nil
}

// checkGCAccounting cross-checks the incremental merged-validity accounting
// (gcacct.go) against a from-scratch recompute:
//
//   - the tracked-segment set equals the usedSegs set, with insertion stamps
//     strictly increasing in usedSegs order (the tie-break that makes heap
//     selection reproduce the old oldest-first scan);
//   - the greedy heap contains exactly the tracked entries, with correct
//     back-pointers and the heap property intact;
//   - every FRESH entry's cached merged and frozen bitmaps match a scratch
//     merge over the live epochs (split by view membership), and its valid
//     counter matches the merged popcount. Stale entries (generation behind)
//     are legal — they are rebuilt before the next selection — so only
//     freshness is asserted for them, not contents.
func (f *FTL) checkGCAccounting() error {
	a := f.acct
	pps := int64(f.cfg.Nand.PagesPerSegment)
	gen := a.curGen()

	tracked := 0
	for s, e := range a.bySeg {
		if e == nil {
			continue
		}
		tracked++
		if e.seg != s {
			return fmt.Errorf("invariant: gcacct entry for segment %d carries seg %d", s, e.seg)
		}
	}
	if tracked != len(f.usedSegs) {
		return fmt.Errorf("invariant: gcacct tracks %d segments, usedSegs has %d", tracked, len(f.usedSegs))
	}
	if len(a.heap) != tracked {
		return fmt.Errorf("invariant: gcacct heap has %d entries for %d tracked segments", len(a.heap), tracked)
	}
	var prevStamp uint64
	for i, s := range f.usedSegs {
		e := a.bySeg[s]
		if e == nil {
			return fmt.Errorf("invariant: used segment %d untracked by gcacct", s)
		}
		if i > 0 && e.stamp <= prevStamp {
			return fmt.Errorf("invariant: gcacct stamp order broken at used segment %d (%d after %d)", s, e.stamp, prevStamp)
		}
		prevStamp = e.stamp
	}
	for i, e := range a.heap {
		if e.heapIdx != i {
			return fmt.Errorf("invariant: gcacct heap[%d] (segment %d) back-pointer is %d", i, e.seg, e.heapIdx)
		}
		if a.bySeg[e.seg] != e {
			return fmt.Errorf("invariant: gcacct heap[%d] (segment %d) not the tracked entry", i, e.seg)
		}
		if i > 0 && a.better(e, a.heap[(i-1)/2]) {
			return fmt.Errorf("invariant: gcacct heap property broken at index %d (segment %d)", i, e.seg)
		}
	}

	// Scratch recompute for fresh caches. The epoch split mirrors ensureFresh.
	isView := make(map[bitmap.Epoch]bool, len(f.views))
	for _, v := range f.views {
		isView[v.epoch] = true
	}
	var frozenEps, liveEps []bitmap.Epoch
	for _, ep := range f.vstore.Epochs() {
		if f.vstore.Deleted(ep) {
			continue
		}
		liveEps = append(liveEps, ep)
		if !isView[ep] {
			frozenEps = append(frozenEps, ep)
		}
	}
	for _, s := range f.usedSegs {
		e := a.bySeg[s]
		if e.gen != gen {
			continue // stale by design; rebuilt before the next selection
		}
		lo, hi := int64(s)*pps, int64(s+1)*pps
		wantMerged := f.vstore.MergeRange(liveEps, lo, hi)
		wantFrozen := f.vstore.MergeRange(frozenEps, lo, hi)
		if !e.merged.Equal(wantMerged) {
			return fmt.Errorf("invariant: gcacct segment %d cached merged bitmap diverges from scratch merge", s)
		}
		if !e.frozen.Equal(wantFrozen) {
			return fmt.Errorf("invariant: gcacct segment %d cached frozen bitmap diverges from scratch merge", s)
		}
		if e.valid != wantMerged.Count() {
			return fmt.Errorf("invariant: gcacct segment %d valid counter %d, scratch merge counts %d", s, e.valid, wantMerged.Count())
		}
	}
	return nil
}

// lineageOf returns the set of epochs on e's parent chain, including e. The
// walk is bounded so a corrupted chain reports an error instead of looping.
func (f *FTL) lineageOf(e bitmap.Epoch) (map[bitmap.Epoch]bool, error) {
	out := map[bitmap.Epoch]bool{e: true}
	limit := len(f.epochParent) + 2
	for i := 0; ; i++ {
		p, ok := f.epochParent[e]
		if !ok {
			return out, nil
		}
		if i >= limit || out[p] {
			return nil, fmt.Errorf("invariant: epoch-parent chain of %d cycles at %d", e, p)
		}
		out[p] = true
		e = p
	}
}

func (f *FTL) checkViews() error {
	for vi, v := range f.views {
		lineage, err := f.lineageOf(v.epoch)
		if err != nil {
			return fmt.Errorf("view %d: %w", vi, err)
		}
		seen := make(map[uint64]uint64)
		var ierr error
		v.fmap.All(func(lba, addr uint64) bool {
			if prev, dup := seen[addr]; dup {
				ierr = fmt.Errorf("invariant: view %d: physical page %d mapped by LBAs %d and %d", vi, addr, prev, lba)
				return false
			}
			seen[addr] = lba
			oob, err := f.dev.PageOOB(nand.PageAddr(addr))
			if err != nil {
				ierr = fmt.Errorf("invariant: view %d: LBA %d -> unprogrammed page %d: %v", vi, lba, addr, err)
				return false
			}
			h, err := header.Unmarshal(oob)
			if err != nil {
				ierr = fmt.Errorf("invariant: view %d: LBA %d -> page %d header: %v", vi, lba, addr, err)
				return false
			}
			if h.Type != header.TypeData || h.LBA != lba {
				ierr = fmt.Errorf("invariant: view %d: LBA %d -> page %d holds %v/%d", vi, lba, addr, h.Type, h.LBA)
				return false
			}
			if !lineage[bitmap.Epoch(h.Epoch)] {
				ierr = fmt.Errorf("invariant: view %d (epoch %d): LBA %d -> page %d stamped with foreign epoch %d", vi, v.epoch, lba, addr, h.Epoch)
				return false
			}
			if !f.vstore.Test(v.epoch, int64(addr)) {
				ierr = fmt.Errorf("invariant: view %d: LBA %d -> page %d invalid in epoch %d", vi, lba, addr, v.epoch)
				return false
			}
			return true
		})
		if ierr != nil {
			return ierr
		}
	}
	return nil
}

func (f *FTL) checkValidity() error {
	activeRefs := make(map[int64]bool)
	f.active.fmap.All(func(_, addr uint64) bool {
		activeRefs[int64(addr)] = true
		return true
	})
	var live []bitmap.Epoch
	for _, e := range f.vstore.Epochs() {
		if !f.vstore.Deleted(e) {
			live = append(live, e)
		}
	}
	// Validity bits live only in bitmap pages some live epoch observes; every
	// other physical page reads invalid in all of them. Sweeping those pages
	// instead of the raw page space keeps this check proportional to touched
	// state, so it still runs in bounded time on a TB-class device whose
	// physical page count dwarfs its working set.
	pageSet := make(map[int64]struct{})
	for _, e := range live {
		for _, idx := range f.vstore.PageIndices(e) {
			pageSet[idx] = struct{}{}
		}
	}
	bitPages := make([]int64, 0, len(pageSet))
	for idx := range pageSet {
		bitPages = append(bitPages, idx)
	}
	sort.Slice(bitPages, func(i, j int) bool { return bitPages[i] < bitPages[j] })

	bpp := f.vstore.BitsPerPage()
	total := f.cfg.Nand.TotalPages()
	pps := int64(f.cfg.Nand.PagesPerSegment)
	for _, bi := range bitPages {
		lo, hi := bi*bpp, (bi+1)*bpp
		if hi > total {
			hi = total
		}
		for p := lo; p < hi; p++ {
			validIn := bitmap.Epoch(0)
			for _, e := range live {
				if f.vstore.Test(e, p) {
					validIn = e
					break
				}
			}
			if validIn == 0 {
				continue
			}
			oob, err := f.dev.PageOOB(nand.PageAddr(p))
			if err != nil {
				return fmt.Errorf("invariant: page %d valid in epoch %d but not programmed: %v", p, validIn, err)
			}
			h, err := header.Unmarshal(oob)
			if err != nil {
				return fmt.Errorf("invariant: page %d valid in epoch %d with unparseable header: %v", p, validIn, err)
			}
			seg := int(p / pps)
			if h.Type == header.TypeData {
				if _, ok := f.presence.segs[seg][bitmap.Epoch(h.Epoch)]; !ok {
					return fmt.Errorf("invariant: valid page %d (epoch %d) missing from segment %d presence summary", p, h.Epoch, seg)
				}
				if f.vstore.Test(f.active.epoch, p) && !activeRefs[p] {
					return fmt.Errorf("invariant: active-valid data page %d (LBA %d) unreferenced by the active map", p, h.LBA)
				}
			}
		}
	}
	return nil
}

func (f *FTL) checkTree() error {
	for _, id := range f.tree.IDs() {
		s, _ := f.tree.Lookup(id)
		if s.Deleted {
			continue
		}
		if !f.vstore.Exists(s.Epoch) || f.vstore.Deleted(s.Epoch) {
			return fmt.Errorf("invariant: snapshot %d epoch %d missing from validity store", id, s.Epoch)
		}
		if got, ok := f.tree.ByEpoch(s.Epoch); !ok || got != s {
			return fmt.Errorf("invariant: snapshot %d not indexed by its epoch %d", id, s.Epoch)
		}
		if s.Parent != nil {
			linked := false
			for _, c := range s.Parent.Children {
				if c == s {
					linked = true
					break
				}
			}
			if !linked {
				return fmt.Errorf("invariant: snapshot %d absent from parent %d's children", id, s.Parent.ID)
			}
			lineage, err := f.lineageOf(s.Epoch)
			if err != nil {
				return fmt.Errorf("snapshot %d: %w", id, err)
			}
			if !lineage[s.Parent.Epoch] {
				return fmt.Errorf("invariant: snapshot %d (epoch %d) does not reach parent epoch %d via epoch-parent chain", id, s.Epoch, s.Parent.Epoch)
			}
		}
	}
	for vi, v := range f.views {
		if !f.vstore.Exists(v.epoch) || f.vstore.Deleted(v.epoch) {
			return fmt.Errorf("invariant: view %d epoch %d missing from validity store", vi, v.epoch)
		}
	}
	return nil
}

func (f *FTL) checkPools() error {
	where := make(map[int]string)
	for _, s := range f.freeSegs {
		if prev, dup := where[s]; dup {
			return fmt.Errorf("invariant: segment %d in %s and free pool", s, prev)
		}
		where[s] = "free"
		if n := f.dev.ProgrammedInSegment(s); n != 0 {
			return fmt.Errorf("invariant: free segment %d holds %d programmed pages", s, n)
		}
		if f.presence.count(s) != 0 {
			return fmt.Errorf("invariant: free segment %d has a non-empty presence summary", s)
		}
	}
	headUsed := false
	for _, s := range f.usedSegs {
		if prev, dup := where[s]; dup {
			return fmt.Errorf("invariant: segment %d in %s and used list", s, prev)
		}
		where[s] = "used"
		if s == f.headSeg {
			headUsed = true
		}
	}
	retired := f.dev.RetiredSegments()
	for _, s := range retired {
		if pool, pooled := where[s]; pooled {
			return fmt.Errorf("invariant: retired segment %d still in %s pool", s, pool)
		}
		if s == f.headSeg {
			return fmt.Errorf("invariant: log head on retired segment %d", s)
		}
		pps := int64(f.cfg.Nand.PagesPerSegment)
		lo, hi := int64(s)*pps, int64(s+1)*pps
		if n := f.vstore.MergeRange(f.vstore.Epochs(), lo, hi).Count(); n != 0 {
			return fmt.Errorf("invariant: retired segment %d holds %d merged-valid blocks (rescue incomplete)", s, n)
		}
		if f.presence.count(s) != 0 {
			return fmt.Errorf("invariant: retired segment %d has a non-empty presence summary", s)
		}
	}
	if len(where)+len(retired) != f.cfg.Nand.Segments {
		return fmt.Errorf("invariant: %d segments tracked + %d retired, device has %d",
			len(where), len(retired), f.cfg.Nand.Segments)
	}
	if !headUsed {
		return fmt.Errorf("invariant: log head segment %d not in used list", f.headSeg)
	}
	return nil
}

// CompareRecovered checks that two independently recovered FTLs (typically
// tail-bounded vs full-scan over copies of the same device image) agree on
// all durable state: the active forward map, log geometry, the epoch graph
// with its deletion marks, the snapshot tree, and per-page validity of
// every data page in every live epoch.
//
// Deliberately not compared: epoch presence summaries (a conservative
// superset whose note-page entries differ between the live write path and
// scan reconstruction), snapshot note addresses and creation times, and
// validity bits of non-data pages (the full scan parks all surviving note
// bits in the final active epoch, while checkpoints preserve the historical
// epoch each note landed in — both keep the notes alive for the cleaner).
func CompareRecovered(a, b *FTL) error {
	if a.active.epoch != b.active.epoch {
		return fmt.Errorf("compare: active epoch %d vs %d", a.active.epoch, b.active.epoch)
	}
	if a.epochCounter != b.epochCounter {
		return fmt.Errorf("compare: epoch counter %d vs %d", a.epochCounter, b.epochCounter)
	}
	if a.seq != b.seq {
		return fmt.Errorf("compare: sequence number %d vs %d", a.seq, b.seq)
	}
	if a.headSeg != b.headSeg || a.headIdx != b.headIdx {
		return fmt.Errorf("compare: log head %d/%d vs %d/%d", a.headSeg, a.headIdx, b.headSeg, b.headIdx)
	}
	if fmt.Sprint(a.usedSegs) != fmt.Sprint(b.usedSegs) {
		return fmt.Errorf("compare: usedSegs %v vs %v", a.usedSegs, b.usedSegs)
	}
	if fmt.Sprint(a.freeSegs) != fmt.Sprint(b.freeSegs) {
		return fmt.Errorf("compare: freeSegs %v vs %v", a.freeSegs, b.freeSegs)
	}
	for s := range a.segLastSeq {
		if a.segLastSeq[s] != b.segLastSeq[s] {
			return fmt.Errorf("compare: segment %d last seq %d vs %d", s, a.segLastSeq[s], b.segLastSeq[s])
		}
	}

	// Active forward map, entry for entry.
	if a.active.fmap.Len() != b.active.fmap.Len() {
		return fmt.Errorf("compare: forward map %d entries vs %d", a.active.fmap.Len(), b.active.fmap.Len())
	}
	var merr error
	a.active.fmap.All(func(lba, addr uint64) bool {
		got, ok := b.active.fmap.Lookup(lba)
		if !ok || got != addr {
			merr = fmt.Errorf("compare: LBA %d -> %d vs %d (present=%v)", lba, addr, got, ok)
			return false
		}
		return true
	})
	if merr != nil {
		return merr
	}

	// Epoch graph: same epochs, same tombstones, same parent links.
	aEps := a.vstore.Epochs()
	bEps := b.vstore.Epochs()
	if len(aEps) != len(bEps) {
		return fmt.Errorf("compare: %d epochs vs %d", len(aEps), len(bEps))
	}
	for _, e := range aEps {
		if !b.vstore.Exists(e) {
			return fmt.Errorf("compare: epoch %d missing from second store", e)
		}
		if a.vstore.Deleted(e) != b.vstore.Deleted(e) {
			return fmt.Errorf("compare: epoch %d deleted=%v vs %v", e, a.vstore.Deleted(e), b.vstore.Deleted(e))
		}
	}
	if len(a.epochParent) != len(b.epochParent) {
		return fmt.Errorf("compare: epoch-parent graph %d edges vs %d", len(a.epochParent), len(b.epochParent))
	}
	for e, p := range a.epochParent {
		if bp, ok := b.epochParent[e]; !ok || bp != p {
			return fmt.Errorf("compare: epoch %d parent %d vs %d (present=%v)", e, p, bp, ok)
		}
	}

	// Snapshot tree: same IDs; per ID the same epoch, deletion mark, parent.
	aIDs := a.tree.IDs()
	bIDs := b.tree.IDs()
	if fmt.Sprint(aIDs) != fmt.Sprint(bIDs) {
		return fmt.Errorf("compare: snapshot IDs %v vs %v", aIDs, bIDs)
	}
	for _, id := range aIDs {
		sa, _ := a.tree.Lookup(id)
		sb, _ := b.tree.Lookup(id)
		if sa.Epoch != sb.Epoch || sa.Deleted != sb.Deleted {
			return fmt.Errorf("compare: snapshot %d (epoch %d, deleted=%v) vs (epoch %d, deleted=%v)",
				id, sa.Epoch, sa.Deleted, sb.Epoch, sb.Deleted)
		}
		pa, pb := SnapshotID(0), SnapshotID(0)
		if sa.Parent != nil {
			pa = sa.Parent.ID
		}
		if sb.Parent != nil {
			pb = sb.Parent.ID
		}
		if pa != pb {
			return fmt.Errorf("compare: snapshot %d parent %d vs %d", id, pa, pb)
		}
	}

	// Per-page validity of data pages, across every live epoch.
	var live []bitmap.Epoch
	for _, e := range aEps {
		if !a.vstore.Deleted(e) {
			live = append(live, e)
		}
	}
	for p := int64(0); p < a.cfg.Nand.TotalPages(); p++ {
		oob, err := a.dev.PageOOB(nand.PageAddr(p))
		if err != nil {
			continue // unprogrammed
		}
		h, err := header.Unmarshal(oob)
		if err != nil || h.Type != header.TypeData {
			continue
		}
		for _, e := range live {
			if a.vstore.Test(e, p) != b.vstore.Test(e, p) {
				return fmt.Errorf("compare: data page %d (LBA %d) validity in epoch %d: %v vs %v",
					p, h.LBA, e, a.vstore.Test(e, p), b.vstore.Test(e, p))
			}
		}
	}
	return nil
}
