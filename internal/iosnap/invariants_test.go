package iosnap

import (
	"bytes"
	"fmt"
	"testing"

	"iosnap/internal/sim"
)

// checkInvariants asserts the exported cross-structure checker passes; the
// checks themselves live in invariants.go (CheckInvariants), shared with the
// torture harness and iosnapctl.
func checkInvariants(t *testing.T, f *FTL) {
	t.Helper()
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomizedInvariantStress drives a long randomized mix of every
// operation the FTL supports — writes, trims, snapshot create/delete,
// readable and writable activations, view writes, deactivations, freezes,
// and crash-recoveries — checking the structural invariants and full
// content model along the way.
func TestRandomizedInvariantStress(t *testing.T) {
	for _, seed := range []uint64{101, 202, 303, 404, 505, 606, 707, 808} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			nc := testConfig().Nand
			nc.Segments = 32
			cfg := DefaultConfig(nc)
			cfg.GCWindow = 10 * sim.Millisecond
			cfg.BitmapPageBits = 64
			cfg.CoWPageCost = 10 * sim.Microsecond
			f, err := New(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			ss := f.SectorSize()
			rng := sim.NewRNG(seed)
			now := sim.Time(0)
			model := make(map[int64]byte)
			snapModels := make(map[SnapshotID]map[int64]byte)
			var liveSnaps []SnapshotID
			type liveView struct {
				view  *View
				model map[int64]byte
			}
			var views []liveView
			const space = 100

			for step := 0; step < 1200; step++ {
				f.sched.RunUntil(now)
				switch op := rng.Intn(100); {
				case op < 55: // active write
					lba := rng.Int63n(space)
					v := byte(step%251 + 1)
					d, err := f.Write(now, lba, sectorPattern(ss, lba, v))
					if err != nil {
						t.Fatalf("step %d write: %v", step, err)
					}
					model[lba] = v
					now = d
				case op < 60: // trim
					lba := rng.Int63n(space)
					d, err := f.Trim(now, lba, 1)
					if err != nil {
						t.Fatalf("step %d trim: %v", step, err)
					}
					delete(model, lba)
					now = d
				case op < 67 && len(liveSnaps) < 2: // snapshot
					snap, d, err := f.CreateSnapshot(now)
					if err != nil {
						t.Fatalf("step %d create: %v", step, err)
					}
					now = d
					frozen := make(map[int64]byte, len(model))
					for k, vv := range model {
						frozen[k] = vv
					}
					snapModels[snap.ID] = frozen
					liveSnaps = append(liveSnaps, snap.ID)
				case op < 72 && len(liveSnaps) > 0: // delete
					idx := rng.Intn(len(liveSnaps))
					id := liveSnaps[idx]
					d, err := f.DeleteSnapshot(now, id)
					if err != nil {
						t.Fatalf("step %d delete: %v", step, err)
					}
					now = d
					delete(snapModels, id)
					liveSnaps = append(liveSnaps[:idx], liveSnaps[idx+1:]...)
				case op < 76 && len(liveSnaps) > 0 && len(views) < 1: // activate
					id := liveSnaps[rng.Intn(len(liveSnaps))]
					writable := rng.Intn(2) == 0
					view, d, err := f.ActivateSync(now, id, noLimit, writable)
					if err != nil {
						t.Fatalf("step %d activate: %v", step, err)
					}
					now = d
					vm := make(map[int64]byte, len(snapModels[id]))
					for k, vv := range snapModels[id] {
						vm[k] = vv
					}
					views = append(views, liveView{view: view, model: vm})
				case op < 80 && len(views) > 0: // view write (if writable)
					lv := &views[rng.Intn(len(views))]
					if lv.view.Writable() {
						lba := rng.Int63n(space)
						v := byte(step%250 + 2)
						d, err := lv.view.Write(now, lba, sectorPattern(ss, lba, v))
						if err != nil {
							t.Fatalf("step %d view write: %v", step, err)
						}
						lv.model[lba] = v
						now = d
					}
				case op < 84 && len(views) > 0: // deactivate
					idx := rng.Intn(len(views))
					d, err := views[idx].view.Deactivate(now)
					if err != nil {
						t.Fatalf("step %d deactivate: %v", step, err)
					}
					now = d
					views = append(views[:idx], views[idx+1:]...)
				case op < 88: // freeze window
					if _, err := f.Freeze(now); err != nil {
						t.Fatalf("step %d freeze: %v", step, err)
					}
					if _, err := f.Write(now, 0, make([]byte, ss)); err == nil {
						t.Fatalf("step %d: frozen write succeeded", step)
					}
					if _, err := f.Unfreeze(now); err != nil {
						t.Fatal(err)
					}
				case op < 92 && len(views) == 0: // crash + recover
					now = f.sched.Drain(now)
					rec, d, err := Recover(cfg, f.dev, nil, now)
					if err != nil {
						t.Fatalf("step %d recover: %v", step, err)
					}
					f = rec
					now = d
				default: // verify a random LBA on the active device
					lba := rng.Int63n(space)
					buf := make([]byte, ss)
					if _, err := f.Read(now, lba, buf); err != nil {
						t.Fatalf("step %d read: %v", step, err)
					}
					if v, ok := model[lba]; ok {
						if !bytes.Equal(buf, sectorPattern(ss, lba, v)) {
							t.Fatalf("step %d: LBA %d wrong", step, lba)
						}
					}
				}
				if step%200 == 199 {
					now = f.sched.Drain(now)
					checkInvariants(t, f)
					// Views must still show their frozen-or-written state.
					buf := make([]byte, ss)
					for _, lv := range views {
						for lba, v := range lv.model {
							if _, err := lv.view.Read(now, lba, buf); err != nil {
								t.Fatalf("view read %d: %v", lba, err)
							}
							if !bytes.Equal(buf, sectorPattern(ss, lba, v)) {
								t.Fatalf("view LBA %d wrong at step %d", lba, step)
							}
						}
					}
				}
			}
			now = f.sched.Drain(now)
			checkInvariants(t, f)
			// Final full verification of active + every live snapshot.
			buf := make([]byte, ss)
			for lba, v := range model {
				if _, err := f.Read(now, lba, buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf, sectorPattern(ss, lba, v)) {
					t.Fatalf("final: active LBA %d wrong", lba)
				}
			}
			for id, frozen := range snapModels {
				view, d, err := f.ActivateSync(now, id, noLimit, false)
				if err != nil {
					t.Fatalf("final activate %d: %v", id, err)
				}
				now = d
				for lba, v := range frozen {
					if _, err := view.Read(now, lba, buf); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(buf, sectorPattern(ss, lba, v)) {
						t.Fatalf("final: snapshot %d LBA %d wrong", id, lba)
					}
				}
				if _, err := view.Deactivate(now); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
