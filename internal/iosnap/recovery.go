package iosnap

import (
	"fmt"
	"sort"

	"iosnap/internal/bitmap"
	"iosnap/internal/ckpt"
	"iosnap/internal/ftlmap"
	"iosnap/internal/header"
	"iosnap/internal/mapcache"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// Crash recovery (paper §5.5) runs in two passes over the log headers:
//
// Pass 1 identifies the snapshot operations (create/delete/activate/
// deactivate notes) and rebuilds the snapshot tree and the epoch
// inheritance graph by replaying them in sequence order.
//
// Pass 2 selects the data translations relevant to the *active* lineage,
// resolves last-write-wins, sorts by LBA, and bulk-loads the forward map
// bottom-up. Per-epoch validity maps are then reconstructed breadth-first
// down the epoch tree: each epoch's view is its parent's view overlaid
// with the epoch's own winning translations, materialized as CoW
// differences so sharing is preserved.
//
// With a committed checkpoint on the device (checkpoint.go) recovery is
// tail-bounded instead: the active map, the snapshot tree, and every
// epoch's validity delta are bulk-loaded from the checkpoint's three chunk
// streams, and only headers written after the cut-off — in segments the
// checkpoint's table proves changed — are scanned and replayed on top.
// Anything that cannot be proven intact (a torn or incomplete generation,
// a reclaimed chunk, a cleaner that moved pre-cut-off blocks, a tail event
// the loaded image cannot express) falls back to the full scan; the log
// itself remains the source of truth.
//
// Only the active tree's forward map is built (the paper's explicit design
// choice); snapshots must be re-activated to be read. Writable views that
// were live at crash time are not reconstructed: their never-snapshotted
// epochs are marked deleted and the cleaner reclaims their blocks.

type recNote struct {
	typ   header.Type
	id    SnapshotID
	epoch bitmap.Epoch
	seq   uint64
	addr  nand.PageAddr
}

type recData struct {
	lba   uint64
	epoch bitmap.Epoch
	seq   uint64
	addr  nand.PageAddr
}

// Recover reconstructs an ioSnap FTL from an existing device, tail-bounded
// when the device anchor names a trustworthy checkpoint.
func Recover(cfg Config, dev *nand.Device, sched *sim.Scheduler, now sim.Time) (*FTL, sim.Time, error) {
	return recoverIoSnap(cfg, dev, sched, now, false)
}

// RecoverFullScan reconstructs an ioSnap FTL by the full header scan,
// ignoring the checkpoint anchor. It is the reference path: tests and
// benchmarks compare its result against tail-bounded recovery.
func RecoverFullScan(cfg Config, dev *nand.Device, sched *sim.Scheduler, now sim.Time) (*FTL, sim.Time, error) {
	return recoverIoSnap(cfg, dev, sched, now, true)
}

func recoverIoSnap(cfg Config, dev *nand.Device, sched *sim.Scheduler, now sim.Time, forceFull bool) (*FTL, sim.Time, error) {
	if err := cfg.Validate(); err != nil {
		return nil, now, err
	}
	if dev.Config() != cfg.Nand {
		return nil, now, fmt.Errorf("iosnap: device geometry differs from config")
	}
	if sched == nil {
		sched = sim.NewScheduler()
	}
	tailAttempted := false
	if !forceFull && dev.Anchor() != nil && cfg.Nand.StoreData {
		tailAttempted = true
		f, t, ok := tryTailRecover(cfg, dev, sched, now)
		if ok {
			return f, t, nil
		}
		now = t // virtual time spent probing the checkpoint is real
	}
	f, now, err := fullScanRecover(cfg, dev, sched, now)
	if err != nil {
		return nil, now, err
	}
	if tailAttempted {
		f.stats.RecoveryFallbacks++
	}
	return f, now, nil
}

// recoverShell builds the empty FTL both recovery paths fill in.
func recoverShell(cfg Config, dev *nand.Device, sched *sim.Scheduler) *FTL {
	f := &FTL{
		cfg:         cfg,
		dev:         dev,
		sched:       sched,
		vstore:      bitmap.NewStore(cfg.Nand.TotalPages(), cfg.BitmapPageBits),
		tree:        NewTree(),
		epochParent: make(map[bitmap.Epoch]bitmap.Epoch),
		gcVictim:    -1,
		segLastSeq:  make([]uint64, cfg.Nand.Segments),
		presence:    newEpochPresence(cfg.Nand.Segments),
		ckptPins:    make(map[nand.PageAddr]bool),
		mapPins:     make(map[nand.PageAddr]uint64),
	}
	f.acct = newGCAcct(f)
	return f
}

// fullScanRecover is the historical path: scan every live segment's
// headers and rebuild everything bottom-up.
func fullScanRecover(cfg Config, dev *nand.Device, sched *sim.Scheduler, now sim.Time) (*FTL, sim.Time, error) {
	f := recoverShell(cfg, dev, sched)

	// ---- Scan: one pass over all OOB headers. ----
	var (
		notes     []recNote
		data      []recData
		segMaxSeq = make([]uint64, cfg.Nand.Segments)
		segUsed   = make([]bool, cfg.Nand.Segments)
		maxSeq    uint64
	)
	for seg := 0; seg < cfg.Nand.Segments; seg++ {
		if dev.SegmentHealth(seg) == nand.Retired {
			// A retired segment was fully rescued before retirement; any
			// headers it still holds are stale copies that must not win
			// last-write-wins replay over the rescued ones.
			continue
		}
		oobs, done, err := f.devScanSegmentOOB(now, seg)
		if err != nil {
			return nil, now, fmt.Errorf("iosnap: scanning segment %d: %w", seg, err)
		}
		now = done
		f.stats.RecoverySegsScanned++
		f.stats.RecoveryHeaderPages += int64(cfg.Nand.PagesPerSegment)
		for idx, oob := range oobs {
			if oob == nil {
				continue
			}
			segUsed[seg] = true
			h, err := header.Unmarshal(oob)
			if err != nil {
				// A torn write: power failed while this header was being
				// programmed, so its contents were never acknowledged. Skip
				// it — the page stays invalid in every epoch and the cleaner
				// reclaims it — but keep count so operators can see it.
				f.stats.TornPagesSkipped++
				continue
			}
			if h.Seq > segMaxSeq[seg] {
				segMaxSeq[seg] = h.Seq
			}
			if h.Seq > maxSeq {
				maxSeq = h.Seq
			}
			addr := dev.Addr(seg, idx)
			switch h.Type {
			case header.TypeData:
				data = append(data, recData{lba: h.LBA, epoch: bitmap.Epoch(h.Epoch), seq: h.Seq, addr: addr})
			case header.TypeSnapCreate, header.TypeSnapDelete, header.TypeSnapActivate, header.TypeSnapDeactivate:
				notes = append(notes, recNote{typ: h.Type, id: SnapshotID(h.LBA), epoch: bitmap.Epoch(h.Epoch), seq: h.Seq, addr: addr})
			}
			// Checkpoint chunks are deliberately ignored: the full scan is
			// the reference reconstruction and trusts only the raw log.
		}
	}
	f.seq = maxSeq
	for _, d := range data {
		f.presence.add(f.dev.SegmentOf(d.addr), d.epoch)
	}
	for _, n := range notes {
		f.presence.add(f.dev.SegmentOf(n.addr), n.epoch)
	}
	// The full scan rebuilds without the checkpoint and pins nothing, so a
	// stale anchor must not survive into the next reopen: its chunks are
	// garbage now and the cleaner may reclaim them at any time.
	dev.SetAnchor(nil)

	// ---- Pass 1: replay notes in seq order; rebuild tree + epoch graph. ----
	// The cleaner can duplicate a note (copy-forwarded, crash before the
	// source segment's erase); collapse equal-seq duplicates first, keeping
	// the higher address to match the data-entry tie-break.
	sort.Slice(notes, func(i, j int) bool {
		if notes[i].seq != notes[j].seq {
			return notes[i].seq < notes[j].seq
		}
		return notes[i].addr < notes[j].addr
	})
	dedup := notes[:0]
	for _, n := range notes {
		if len(dedup) > 0 && dedup[len(dedup)-1].seq == n.seq {
			dedup[len(dedup)-1] = n
			continue
		}
		dedup = append(dedup, n)
	}
	notes = dedup
	counter := bitmap.Epoch(1)
	activeEpoch := bitmap.Epoch(1)
	deadEpochs := make(map[bitmap.Epoch]bool)
	type liveNote struct {
		addr nand.PageAddr
		live bool
	}
	noteState := make(map[nand.PageAddr]*liveNote)
	createNoteOf := make(map[SnapshotID]nand.PageAddr)

	for _, n := range notes {
		switch n.typ {
		case header.TypeSnapCreate:
			frozen := n.epoch
			counter++
			newEpoch := counter
			f.epochParent[newEpoch] = frozen
			parent := f.nearestSnapshotAncestor(frozen)
			snap := &Snapshot{ID: n.id, Epoch: frozen, Parent: parent, noteAddr: n.addr}
			f.tree.add(snap)
			if frozen == activeEpoch {
				activeEpoch = newEpoch
			}
			createNoteOf[n.id] = n.addr
			noteState[n.addr] = &liveNote{addr: n.addr, live: true}
		case header.TypeSnapDelete:
			if s, ok := f.tree.Lookup(n.id); ok {
				s.Deleted = true
			}
			noteState[n.addr] = &liveNote{addr: n.addr, live: true}
		case header.TypeSnapActivate:
			newEpoch := n.epoch
			if newEpoch > counter {
				counter = newEpoch
			}
			if s, ok := f.tree.Lookup(n.id); ok {
				f.epochParent[newEpoch] = s.Epoch
			}
			// The activation's epoch dies with the crash unless a snapshot
			// was later created from it (a create note with frozen=newEpoch
			// resurrects the lineage); assume dead, resurrect below.
			deadEpochs[newEpoch] = true
			noteState[n.addr] = &liveNote{addr: n.addr, live: true}
		case header.TypeSnapDeactivate:
			deadEpochs[n.epoch] = true
			noteState[n.addr] = &liveNote{addr: n.addr, live: true}
		}
	}
	// Epochs frozen into snapshots are never dead-by-abandonment, and the
	// continuation epoch allocated at create time keeps its branch alive if
	// it is the active epoch.
	for e := range f.tree.byEpoch {
		delete(deadEpochs, e)
	}
	delete(deadEpochs, activeEpoch)

	f.epochCounter = counter

	// ---- Pass 2: active-lineage forward map. ----
	lineage := map[bitmap.Epoch]bool{activeEpoch: true}
	for e := activeEpoch; ; {
		p, ok := f.epochParent[e]
		if !ok {
			break
		}
		lineage[p] = true
		e = p
	}
	type winner struct {
		addr nand.PageAddr
		seq  uint64
	}
	winners := make(map[uint64]winner)
	for _, d := range data {
		if !lineage[d.epoch] {
			continue
		}
		w, ok := winners[d.lba]
		// Equal seq means the cleaner duplicated the block and crashed
		// before erasing the source; the copies are identical, pick the
		// higher address deterministically.
		if !ok || d.seq > w.seq || (d.seq == w.seq && d.addr > w.addr) {
			winners[d.lba] = winner{addr: d.addr, seq: d.seq}
		}
	}
	entries := make([]ftlmap.Entry, 0, len(winners))
	for lba, w := range winners {
		entries = append(entries, ftlmap.Entry{Key: lba, Val: uint64(w.addr)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	f.active = &view{fmap: f.recoveredMap(entries, nil), epoch: activeEpoch, writable: true}
	if s := f.nearestSnapshotAncestorInclusive(activeEpoch); s != nil {
		f.active.parent = s
	}
	f.views = []*view{f.active}

	// ---- Validity reconstruction, breadth-first down the epoch tree. ----
	if err := f.rebuildValidity(data); err != nil {
		return nil, now, err
	}
	for e := range deadEpochs {
		if f.vstore.Exists(e) {
			if err := f.vstore.DeleteEpoch(e); err != nil {
				return nil, now, err
			}
		}
	}
	for _, s := range f.tree.byID {
		if s.Deleted && f.vstore.Exists(s.Epoch) {
			if err := f.vstore.DeleteEpoch(s.Epoch); err != nil {
				return nil, now, err
			}
		}
	}
	// Preserve snapshot notes that recovery still depends on: set their
	// bits in the active epoch so the cleaner carries them forward.
	for _, st := range noteState {
		if st.live {
			f.vstore.Set(activeEpoch, int64(st.addr))
		}
	}
	f.vstore.ResetCoWCounter()

	return finishRecovery(f, now, segUsed, segMaxSeq, len(data))
}

// tryTailRecover attempts checkpoint-based recovery via the device anchor.
// It mutates only the candidate FTL, never the device, so a failure at any
// point simply discards the partial state and reports ok=false.
func tryTailRecover(cfg Config, dev *nand.Device, sched *sim.Scheduler, now sim.Time) (*FTL, sim.Time, bool) {
	anchor := dev.Anchor()
	f := recoverShell(cfg, dev, sched)

	// ---- Read the anchor's chunks and bucket them by stream type. ----
	type chunkPage struct {
		idx, total uint64
		payload    []byte
	}
	streams := make(map[header.Type][]chunkPage)
	if f.cfg.ReferenceDataPath {
		for _, addr := range anchor.Addrs {
			oob, err := dev.PageOOB(addr)
			if err != nil {
				return nil, now, false
			}
			h, err := header.Unmarshal(oob)
			if err != nil || !h.Type.IsCheckpoint() {
				return nil, now, false
			}
			payload, _, done, err := f.devReadPage(now, addr)
			if err != nil {
				return nil, now, false
			}
			now = done
			streams[h.Type] = append(streams[h.Type], chunkPage{idx: h.LBA, total: h.Epoch, payload: payload})
		}
	} else {
		// Batched anchor load: validate the chunk headers host-side, then
		// fetch every chunk payload in one devReadPages call (cell reads
		// overlap across channels instead of chaining).
		hs := make([]header.Header, 0, len(anchor.Addrs))
		for _, addr := range anchor.Addrs {
			oob, err := dev.PageOOB(addr)
			if err != nil {
				return nil, now, false
			}
			h, err := header.Unmarshal(oob)
			if err != nil || !h.Type.IsCheckpoint() {
				return nil, now, false
			}
			hs = append(hs, h)
		}
		payloads, _, k, done, err := f.devReadPages(now, anchor.Addrs)
		now = done
		if err != nil || k != len(anchor.Addrs) {
			return nil, now, false
		}
		for i, h := range hs {
			streams[h.Type] = append(streams[h.Type], chunkPage{idx: h.LBA, total: h.Epoch, payload: payloads[i]})
		}
	}
	// Each of the three streams must be complete ({0..total-1}, one copy
	// each) and decode against the anchor's generation and one shared
	// cut-off; anything less means a torn or partially-reclaimed checkpoint.
	decoded := make(map[header.Type][]ckpt.Section, 3)
	var (
		ckptSeq uint64
		haveSeq bool
	)
	for _, typ := range []header.Type{header.TypeCkptMap, header.TypeCkptTree, header.TypeCkptValid} {
		group := streams[typ]
		if len(group) == 0 {
			return nil, now, false
		}
		total := group[0].total
		if total == 0 || uint64(len(group)) != total {
			return nil, now, false
		}
		ordered := make([][]byte, total)
		for _, c := range group {
			if c.total != total || c.idx >= total || ordered[c.idx] != nil {
				return nil, now, false
			}
			ordered[c.idx] = c.payload
		}
		stream, err := ckpt.Join(anchor.ID, ordered)
		if err != nil {
			return nil, now, false
		}
		id, seq, secs, err := ckpt.Decode(stream)
		if err != nil || id != anchor.ID {
			return nil, now, false
		}
		if !haveSeq {
			ckptSeq, haveSeq = seq, true
		} else if seq != ckptSeq {
			return nil, now, false
		}
		decoded[typ] = secs
	}
	mapEntries, gtdEnts, gtdSlots, err := decodeCkptMapStream(decoded[header.TypeCkptMap])
	if err != nil {
		return nil, now, false
	}
	if gtdEnts != nil {
		// A GTD checkpoint is only loadable into a paged map with the same
		// translation-page geometry; any other configuration falls back to
		// the full scan, which handles every mode.
		if f.cfg.MapCachePages == 0 || gtdSlots != mapcache.SlotsFor(cfg.Nand.SectorSize) {
			return nil, now, false
		}
	}
	treeState, err := decodeCkptTree(decoded[header.TypeCkptTree])
	if err != nil {
		return nil, now, false
	}
	epochs, err := decodeCkptValid(decoded[header.TypeCkptValid], f.vstore.BitsPerPage())
	if err != nil {
		return nil, now, false
	}
	recorded, ok := checkSegTable(dev, treeState.table)
	if !ok {
		return nil, now, false
	}

	// ---- Bulk-load the checkpoint image. ----
	// Epoch records are ascending and an epoch's parent is always numerically
	// smaller, so one pass creates the whole inheritance graph; tombstones
	// apply after every creation so parents stay addressable.
	for _, er := range epochs {
		if err := f.vstore.CreateEpoch(er.epoch, er.parent); err != nil {
			return nil, now, false
		}
		if er.parent != bitmap.NoParent {
			f.epochParent[er.epoch] = er.parent
		}
		for _, pg := range er.pages {
			if err := f.vstore.ImportPage(er.epoch, pg.PageIdx, pg.Words); err != nil {
				return nil, now, false
			}
		}
	}
	for _, er := range epochs {
		if er.deleted {
			if err := f.vstore.DeleteEpoch(er.epoch); err != nil {
				return nil, now, false
			}
		}
	}
	f.epochCounter = treeState.counter
	// Snapshot records are sorted by ID and a parent's ID is always smaller
	// than its children's, so one pass relinks the tree.
	for _, sr := range treeState.snaps {
		var parent *Snapshot
		if sr.parentID != 0 {
			p, ok := f.tree.Lookup(sr.parentID)
			if !ok {
				return nil, now, false
			}
			parent = p
		}
		f.tree.add(&Snapshot{ID: sr.id, Epoch: sr.epoch, Parent: parent, Deleted: sr.deleted, noteAddr: sr.noteAddr})
	}
	// Presence summaries for every recorded segment; scanned tail records
	// layer on top below.
	for _, rec := range treeState.table {
		for _, e := range rec.presence {
			f.presence.add(rec.seg, e)
		}
	}

	// ---- Tail scan: only segments the table proves changed. ----
	var (
		notes     []recNote
		data      []recData
		segMaxSeq = make([]uint64, cfg.Nand.Segments)
		segUsed   = make([]bool, cfg.Nand.Segments)
		maxSeq    = ckptSeq
	)
	for _, rec := range treeState.table {
		segUsed[rec.seg] = rec.prog > 0
		segMaxSeq[rec.seg] = rec.maxSeq
		if rec.maxSeq > maxSeq {
			maxSeq = rec.maxSeq
		}
	}
	for seg := 0; seg < cfg.Nand.Segments; seg++ {
		if dev.SegmentHealth(seg) == nand.Retired {
			continue
		}
		rec, isRecorded := recorded[seg]
		if isRecorded && dev.NextFreeInSegment(seg) == rec.prog {
			continue // unchanged since serialization: the table speaks for it
		}
		if !isRecorded && dev.ProgrammedInSegment(seg) == 0 {
			continue // still free
		}
		from := 0
		if isRecorded {
			from = rec.prog // pages below prog are checkpoint-covered state
		}
		oobs, done, err := f.devScanSegmentOOB(now, seg)
		if err != nil {
			return nil, now, false
		}
		now = done
		f.stats.RecoverySegsScanned++
		f.stats.RecoveryHeaderPages += int64(cfg.Nand.PagesPerSegment)
		for idx := from; idx < len(oobs); idx++ {
			oob := oobs[idx]
			if oob == nil {
				continue
			}
			segUsed[seg] = true
			h, err := header.Unmarshal(oob)
			if err != nil {
				f.stats.TornPagesSkipped++
				continue
			}
			if h.Seq <= ckptSeq {
				// A parseable pre-cut-off header in the post-checkpoint
				// region is a cleaner copy of checkpointed state (copied
				// after serialization, crash before the victim's erase).
				// Replaying it would double-apply history the checkpoint
				// already contains — and the full scan resolves such
				// duplicates differently — so the generation is stale.
				return nil, now, false
			}
			if h.Seq > segMaxSeq[seg] {
				segMaxSeq[seg] = h.Seq
			}
			if h.Seq > maxSeq {
				maxSeq = h.Seq
			}
			if h.Type.IsCheckpoint() {
				continue // this (or an aborted) generation's chunks
			}
			addr := dev.Addr(seg, idx)
			switch h.Type {
			case header.TypeData:
				data = append(data, recData{lba: h.LBA, epoch: bitmap.Epoch(h.Epoch), seq: h.Seq, addr: addr})
				f.presence.add(seg, bitmap.Epoch(h.Epoch))
			case header.TypeSnapCreate, header.TypeSnapDelete, header.TypeSnapActivate, header.TypeSnapDeactivate:
				notes = append(notes, recNote{typ: h.Type, id: SnapshotID(h.LBA), epoch: bitmap.Epoch(h.Epoch), seq: h.Seq, addr: addr})
				f.presence.add(seg, bitmap.Epoch(h.Epoch))
			}
		}
	}
	f.seq = maxSeq

	// ---- Replay the tail on top of the loaded image. ----
	entries := make([]ftlmap.Entry, 0, len(mapEntries))
	for _, p := range mapEntries {
		entries = append(entries, ftlmap.Entry{Key: p[0], Val: p[1]})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	f.active = &view{fmap: f.recoveredMap(entries, gtdEnts), epoch: treeState.active, writable: true}
	f.views = []*view{f.active}

	if !f.replayTail(notes, data) {
		return nil, now, false
	}
	if s := f.nearestSnapshotAncestorInclusive(f.active.epoch); s != nil {
		f.active.parent = s
	}
	f.vstore.ResetCoWCounter()

	// The anchor's chunks are live recovery state until superseded.
	f.anchorID = anchor.ID
	f.anchorAddrs = append([]nand.PageAddr(nil), anchor.Addrs...)
	for _, a := range f.anchorAddrs {
		f.ckptPins[a] = true
	}

	out, done, err := finishRecovery(f, now, segUsed, segMaxSeq, len(mapEntries)+len(gtdEnts)+len(notes)+len(data))
	if err != nil {
		return nil, done, false
	}
	out.stats.RecoveryTailBounded = true
	return out, done, true
}

// replayTail applies post-cut-off notes and data, in one global sequence
// order, onto a checkpoint-loaded FTL. It reports false when the tail
// contains an event the loaded image cannot express — a snapshot created
// from an epoch the checkpoint normalized dead, or writes into a live
// non-active epoch (a writable view whose private map was never
// checkpointed) — in which case the caller falls back to the full scan.
func (f *FTL) replayTail(notes []recNote, data []recData) bool {
	type tailRec struct {
		note *recNote
		data *recData
		seq  uint64
		addr nand.PageAddr
	}
	recs := make([]tailRec, 0, len(notes)+len(data))
	for i := range notes {
		recs = append(recs, tailRec{note: &notes[i], seq: notes[i].seq, addr: notes[i].addr})
	}
	for i := range data {
		recs = append(recs, tailRec{data: &data[i], seq: data[i].seq, addr: data[i].addr})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].seq != recs[j].seq {
			return recs[i].seq < recs[j].seq
		}
		return recs[i].addr < recs[j].addr
	})
	// Equal-seq pairs are cleaner duplicates (copy-forwarded, crash before
	// the source erase); keep the higher address, the full scan's tie-break.
	dedup := recs[:0]
	for _, r := range recs {
		if len(dedup) > 0 && dedup[len(dedup)-1].seq == r.seq {
			dedup[len(dedup)-1] = r
			continue
		}
		dedup = append(dedup, r)
	}
	recs = dedup

	deadEpochs := make(map[bitmap.Epoch]bool)
	for _, r := range recs {
		if r.note != nil {
			n := r.note
			// The note block is valid in the epoch absorbing primary writes
			// when it was appended (the live writeNote rule).
			f.vstore.Set(f.active.epoch, int64(n.addr))
			switch n.typ {
			case header.TypeSnapCreate:
				frozen := n.epoch
				if deadEpochs[frozen] || (f.vstore.Exists(frozen) && f.vstore.Deleted(frozen)) {
					// The snapshot freezes an epoch the checkpoint serialized
					// as dying at recovery (an activation view's), or one whose
					// tail writes were already dropped; neither can be
					// resurrected from the loaded image.
					return false
				}
				f.epochCounter++
				newEpoch := f.epochCounter
				if err := f.vstore.CreateEpoch(newEpoch, frozen); err != nil {
					return false
				}
				f.epochParent[newEpoch] = frozen
				snap := &Snapshot{ID: n.id, Epoch: frozen, Parent: f.nearestSnapshotAncestor(frozen), noteAddr: n.addr}
				f.tree.add(snap)
				if frozen == f.active.epoch {
					f.active.epoch = newEpoch
					f.active.parent = snap
				}
			case header.TypeSnapDelete:
				if s, ok := f.tree.Lookup(n.id); ok {
					s.Deleted = true
					if f.vstore.Exists(s.Epoch) && !f.vstore.Deleted(s.Epoch) {
						if err := f.vstore.DeleteEpoch(s.Epoch); err != nil {
							return false
						}
					}
				}
			case header.TypeSnapActivate:
				newEpoch := n.epoch
				if newEpoch > f.epochCounter {
					f.epochCounter = newEpoch
				}
				if s, ok := f.tree.Lookup(n.id); ok {
					f.epochParent[newEpoch] = s.Epoch
					if !f.vstore.Exists(newEpoch) {
						if err := f.vstore.CreateEpoch(newEpoch, s.Epoch); err != nil {
							return false
						}
					}
				}
				// Dies with the crash unless a later create resurrects it —
				// and resurrection bails above, so dead is final here.
				deadEpochs[newEpoch] = true
			case header.TypeSnapDeactivate:
				deadEpochs[n.epoch] = true
			}
			continue
		}
		d := r.data
		switch {
		case d.epoch == f.active.epoch:
			if prev, existed := f.active.fmap.Insert(d.lba, uint64(d.addr)); existed {
				f.vstore.Clear(d.epoch, int64(prev))
			}
			f.vstore.Set(d.epoch, int64(d.addr))
		case deadEpochs[d.epoch],
			f.vstore.Exists(d.epoch) && f.vstore.Deleted(d.epoch):
			// A write into an epoch that dies at recovery (an activation
			// view's): the full scan discards these too, just later.
		default:
			// A live non-active epoch — a writable view whose forward map
			// was never checkpointed, so the overwrite chain cannot be
			// replayed. Rare; the full scan handles it.
			return false
		}
	}
	for e := range deadEpochs {
		if f.vstore.Exists(e) && !f.vstore.Deleted(e) {
			if err := f.vstore.DeleteEpoch(e); err != nil {
				return false
			}
		}
	}
	return true
}

// finishRecovery rebuilds the log geometry — segment pools, head, cleaner
// accounting — shared by both recovery paths, and charges the modeled
// reconstruction CPU for the processed records.
func finishRecovery(f *FTL, now sim.Time, segUsed []bool, segMaxSeq []uint64, records int) (*FTL, sim.Time, error) {
	cfg, dev := f.cfg, f.dev
	type segOrder struct {
		seg int
		seq uint64
	}
	var used []segOrder
	for seg := 0; seg < cfg.Nand.Segments; seg++ {
		switch {
		case dev.SegmentHealth(seg) == nand.Retired:
			// Belongs to neither pool: a grown bad block stays out of service.
		case segUsed[seg]:
			used = append(used, segOrder{seg, segMaxSeq[seg]})
		default:
			f.freeSegs = append(f.freeSegs, seg)
		}
	}
	sort.Slice(used, func(i, j int) bool { return used[i].seq < used[j].seq })
	for _, u := range used {
		f.usedSegs = append(f.usedSegs, u.seg)
	}
	copy(f.segLastSeq, segMaxSeq)
	if len(f.usedSegs) > 0 {
		last := f.usedSegs[len(f.usedSegs)-1]
		// The head resumes at the newest segment if it still has room — and
		// is healthy; appending onto suspect media would repeat the failure
		// that made it suspect.
		if next := dev.NextFreeInSegment(last); next < cfg.Nand.PagesPerSegment && dev.SegmentHealth(last) == nand.Healthy {
			f.headSeg, f.headIdx = last, next
		} else {
			if len(f.freeSegs) == 0 {
				return nil, now, ErrDeviceFull
			}
			f.headSeg = f.freeSegs[0]
			f.freeSegs = f.freeSegs[1:]
			f.headIdx = 0
			f.usedSegs = append(f.usedSegs, f.headSeg)
		}
	} else {
		if len(f.freeSegs) == 0 {
			return nil, now, ErrDeviceFull
		}
		f.headSeg = f.freeSegs[0]
		f.freeSegs = f.freeSegs[1:]
		f.headIdx = 0
		f.usedSegs = append(f.usedSegs, f.headSeg)
	}
	// Accounting entries start stale (their caches were never built), in
	// final usedSegs order so victim tie-breaks match a linear scan; the
	// first selection decision rebuilds them against the recovered epochs.
	for _, s := range f.usedSegs {
		f.acct.track(s, false)
	}
	// Reconstruction CPU cost: proportional to processed translations.
	now = now.Add(sim.Duration(records) * cfg.ReconstructCPUPerEntry)
	f.maybeScheduleGC(now)
	return f, now, nil
}

// nearestSnapshotAncestor walks the epoch graph upward from e's parent and
// returns the first epoch frozen into a snapshot.
func (f *FTL) nearestSnapshotAncestor(e bitmap.Epoch) *Snapshot {
	p, ok := f.epochParent[e]
	for ok {
		if s, isSnap := f.tree.ByEpoch(p); isSnap {
			return s
		}
		p, ok = f.epochParent[p]
	}
	return nil
}

// nearestSnapshotAncestorInclusive also considers e itself.
func (f *FTL) nearestSnapshotAncestorInclusive(e bitmap.Epoch) *Snapshot {
	if s, ok := f.tree.ByEpoch(e); ok {
		return s
	}
	return f.nearestSnapshotAncestor(e)
}

// rebuildValidity reconstructs every epoch's validity map breadth-first:
// an epoch's view is its parent's view overlaid with its own last-write-
// wins translations, applied to the CoW store as differences.
func (f *FTL) rebuildValidity(data []recData) error {
	// Group data by epoch, resolving within-epoch overwrites.
	type winner struct {
		addr nand.PageAddr
		seq  uint64
	}
	perEpoch := make(map[bitmap.Epoch]map[uint64]winner)
	for _, d := range data {
		m := perEpoch[d.epoch]
		if m == nil {
			m = make(map[uint64]winner)
			perEpoch[d.epoch] = m
		}
		w, ok := m[d.lba]
		if !ok || d.seq > w.seq || (d.seq == w.seq && d.addr > w.addr) {
			m[d.lba] = winner{addr: d.addr, seq: d.seq}
		}
	}

	// children lists for BFS.
	children := make(map[bitmap.Epoch][]bitmap.Epoch)
	for e, p := range f.epochParent {
		children[p] = append(children[p], e)
	}
	for _, c := range children {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}

	// BFS from the root epoch 1.
	type qent struct {
		epoch  bitmap.Epoch
		parent bitmap.Epoch
		view   map[uint64]winner // lba -> live block as of this epoch
	}
	if err := f.vstore.CreateEpoch(1, bitmap.NoParent); err != nil {
		return err
	}
	rootView := make(map[uint64]winner)
	queue := []qent{{epoch: 1, parent: bitmap.NoParent, view: rootView}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]

		// Overlay this epoch's own winners onto the inherited view,
		// mirroring the inherit-then-diverge behaviour of the live system.
		own := perEpoch[cur.epoch]
		// Deterministic order for reproducibility.
		lbas := make([]uint64, 0, len(own))
		for lba := range own {
			lbas = append(lbas, lba)
		}
		sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
		for _, lba := range lbas {
			w := own[lba]
			if old, ok := cur.view[lba]; ok {
				f.vstore.Clear(cur.epoch, int64(old.addr))
			}
			f.vstore.Set(cur.epoch, int64(w.addr))
			cur.view[lba] = w
		}

		kids := children[cur.epoch]
		for i, k := range kids {
			if err := f.vstore.CreateEpoch(k, cur.epoch); err != nil {
				return err
			}
			kv := cur.view
			if i < len(kids)-1 {
				// Siblings diverge: all but the last need their own copy.
				kv = make(map[uint64]winner, len(cur.view))
				for lba, w := range cur.view {
					kv[lba] = w
				}
			}
			queue = append(queue, qent{epoch: k, parent: cur.epoch, view: kv})
		}
	}
	return nil
}
