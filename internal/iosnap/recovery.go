package iosnap

import (
	"fmt"
	"sort"

	"iosnap/internal/bitmap"
	"iosnap/internal/ftlmap"
	"iosnap/internal/header"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// Crash recovery (paper §5.5) runs in two passes over the log headers:
//
// Pass 1 identifies the snapshot operations (create/delete/activate/
// deactivate notes) and rebuilds the snapshot tree and the epoch
// inheritance graph by replaying them in sequence order.
//
// Pass 2 selects the data translations relevant to the *active* lineage,
// resolves last-write-wins, sorts by LBA, and bulk-loads the forward map
// bottom-up. Per-epoch validity maps are then reconstructed breadth-first
// down the epoch tree: each epoch's view is its parent's view overlaid
// with the epoch's own winning translations, materialized as CoW
// differences so sharing is preserved.
//
// Only the active tree's forward map is built (the paper's explicit design
// choice); snapshots must be re-activated to be read. Writable views that
// were live at crash time are not reconstructed: their never-snapshotted
// epochs are marked deleted and the cleaner reclaims their blocks.

type recNote struct {
	typ   header.Type
	id    SnapshotID
	epoch bitmap.Epoch
	seq   uint64
	addr  nand.PageAddr
}

type recData struct {
	lba   uint64
	epoch bitmap.Epoch
	seq   uint64
	addr  nand.PageAddr
}

// Recover reconstructs an ioSnap FTL from an existing device.
func Recover(cfg Config, dev *nand.Device, sched *sim.Scheduler, now sim.Time) (*FTL, sim.Time, error) {
	if err := cfg.Validate(); err != nil {
		return nil, now, err
	}
	if dev.Config() != cfg.Nand {
		return nil, now, fmt.Errorf("iosnap: device geometry differs from config")
	}
	if sched == nil {
		sched = sim.NewScheduler()
	}

	f := &FTL{
		cfg:         cfg,
		dev:         dev,
		sched:       sched,
		vstore:      bitmap.NewStore(cfg.Nand.TotalPages(), cfg.BitmapPageBits),
		tree:        NewTree(),
		epochParent: make(map[bitmap.Epoch]bitmap.Epoch),
		gcVictim:    -1,
		presence:    newEpochPresence(cfg.Nand.Segments),
	}

	// ---- Scan: one pass over all OOB headers. ----
	var (
		notes     []recNote
		data      []recData
		segMaxSeq = make([]uint64, cfg.Nand.Segments)
		segUsed   = make([]bool, cfg.Nand.Segments)
		maxSeq    uint64
		torn      int64
	)
	for seg := 0; seg < cfg.Nand.Segments; seg++ {
		if dev.SegmentHealth(seg) == nand.Retired {
			// A retired segment was fully rescued before retirement; any
			// headers it still holds are stale copies that must not win
			// last-write-wins replay over the rescued ones.
			continue
		}
		oobs, done, err := f.devScanSegmentOOB(now, seg)
		if err != nil {
			return nil, now, fmt.Errorf("iosnap: scanning segment %d: %w", seg, err)
		}
		now = done
		for idx, oob := range oobs {
			if oob == nil {
				continue
			}
			segUsed[seg] = true
			h, err := header.Unmarshal(oob)
			if err != nil {
				// A torn write: power failed while this header was being
				// programmed, so its contents were never acknowledged. Skip
				// it — the page stays invalid in every epoch and the cleaner
				// reclaims it — but keep count so operators can see it.
				torn++
				continue
			}
			if h.Seq > segMaxSeq[seg] {
				segMaxSeq[seg] = h.Seq
			}
			if h.Seq > maxSeq {
				maxSeq = h.Seq
			}
			addr := dev.Addr(seg, idx)
			switch h.Type {
			case header.TypeData:
				data = append(data, recData{lba: h.LBA, epoch: bitmap.Epoch(h.Epoch), seq: h.Seq, addr: addr})
			case header.TypeSnapCreate, header.TypeSnapDelete, header.TypeSnapActivate, header.TypeSnapDeactivate:
				notes = append(notes, recNote{typ: h.Type, id: SnapshotID(h.LBA), epoch: bitmap.Epoch(h.Epoch), seq: h.Seq, addr: addr})
			}
		}
	}
	f.seq = maxSeq
	f.stats.TornPagesSkipped = torn
	for _, d := range data {
		f.presence.add(f.dev.SegmentOf(d.addr), d.epoch)
	}
	for _, n := range notes {
		f.presence.add(f.dev.SegmentOf(n.addr), n.epoch)
	}

	// ---- Pass 1: replay notes in seq order; rebuild tree + epoch graph. ----
	// The cleaner can duplicate a note (copy-forwarded, crash before the
	// source segment's erase); collapse equal-seq duplicates first, keeping
	// the higher address to match the data-entry tie-break.
	sort.Slice(notes, func(i, j int) bool {
		if notes[i].seq != notes[j].seq {
			return notes[i].seq < notes[j].seq
		}
		return notes[i].addr < notes[j].addr
	})
	dedup := notes[:0]
	for _, n := range notes {
		if len(dedup) > 0 && dedup[len(dedup)-1].seq == n.seq {
			dedup[len(dedup)-1] = n
			continue
		}
		dedup = append(dedup, n)
	}
	notes = dedup
	counter := bitmap.Epoch(1)
	activeEpoch := bitmap.Epoch(1)
	deadEpochs := make(map[bitmap.Epoch]bool)
	type liveNote struct {
		addr nand.PageAddr
		live bool
	}
	noteState := make(map[nand.PageAddr]*liveNote)
	createNoteOf := make(map[SnapshotID]nand.PageAddr)

	for _, n := range notes {
		switch n.typ {
		case header.TypeSnapCreate:
			frozen := n.epoch
			counter++
			newEpoch := counter
			f.epochParent[newEpoch] = frozen
			parent := f.nearestSnapshotAncestor(frozen)
			snap := &Snapshot{ID: n.id, Epoch: frozen, Parent: parent, noteAddr: n.addr}
			f.tree.add(snap)
			if frozen == activeEpoch {
				activeEpoch = newEpoch
			}
			createNoteOf[n.id] = n.addr
			noteState[n.addr] = &liveNote{addr: n.addr, live: true}
		case header.TypeSnapDelete:
			if s, ok := f.tree.Lookup(n.id); ok {
				s.Deleted = true
			}
			noteState[n.addr] = &liveNote{addr: n.addr, live: true}
		case header.TypeSnapActivate:
			newEpoch := n.epoch
			if newEpoch > counter {
				counter = newEpoch
			}
			if s, ok := f.tree.Lookup(n.id); ok {
				f.epochParent[newEpoch] = s.Epoch
			}
			// The activation's epoch dies with the crash unless a snapshot
			// was later created from it (a create note with frozen=newEpoch
			// resurrects the lineage); assume dead, resurrect below.
			deadEpochs[newEpoch] = true
			noteState[n.addr] = &liveNote{addr: n.addr, live: true}
		case header.TypeSnapDeactivate:
			deadEpochs[n.epoch] = true
			noteState[n.addr] = &liveNote{addr: n.addr, live: true}
		}
	}
	// Epochs frozen into snapshots are never dead-by-abandonment, and the
	// continuation epoch allocated at create time keeps its branch alive if
	// it is the active epoch.
	for e := range f.tree.byEpoch {
		delete(deadEpochs, e)
	}
	delete(deadEpochs, activeEpoch)

	f.epochCounter = counter

	// ---- Pass 2: active-lineage forward map. ----
	lineage := map[bitmap.Epoch]bool{activeEpoch: true}
	for e := activeEpoch; ; {
		p, ok := f.epochParent[e]
		if !ok {
			break
		}
		lineage[p] = true
		e = p
	}
	type winner struct {
		addr nand.PageAddr
		seq  uint64
	}
	winners := make(map[uint64]winner)
	for _, d := range data {
		if !lineage[d.epoch] {
			continue
		}
		w, ok := winners[d.lba]
		// Equal seq means the cleaner duplicated the block and crashed
		// before erasing the source; the copies are identical, pick the
		// higher address deterministically.
		if !ok || d.seq > w.seq || (d.seq == w.seq && d.addr > w.addr) {
			winners[d.lba] = winner{addr: d.addr, seq: d.seq}
		}
	}
	entries := make([]ftlmap.Entry, 0, len(winners))
	for lba, w := range winners {
		entries = append(entries, ftlmap.Entry{Key: lba, Val: uint64(w.addr)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	f.active = &view{fmap: ftlmap.BulkLoad(entries, 1.0), epoch: activeEpoch, writable: true}
	if s := f.nearestSnapshotAncestorInclusive(activeEpoch); s != nil {
		f.active.parent = s
	}
	f.views = []*view{f.active}

	// ---- Validity reconstruction, breadth-first down the epoch tree. ----
	if err := f.rebuildValidity(data); err != nil {
		return nil, now, err
	}
	for e := range deadEpochs {
		if f.vstore.Exists(e) {
			if err := f.vstore.DeleteEpoch(e); err != nil {
				return nil, now, err
			}
		}
	}
	for _, s := range f.tree.byID {
		if s.Deleted && f.vstore.Exists(s.Epoch) {
			if err := f.vstore.DeleteEpoch(s.Epoch); err != nil {
				return nil, now, err
			}
		}
	}
	// Preserve snapshot notes that recovery still depends on: set their
	// bits in the active epoch so the cleaner carries them forward.
	for _, st := range noteState {
		if st.live {
			f.vstore.Set(activeEpoch, int64(st.addr))
		}
	}
	f.vstore.ResetCoWCounter()

	// ---- Log geometry: segment order, free pool, head, like the base FTL. ----
	type segOrder struct {
		seg int
		seq uint64
	}
	var used []segOrder
	for seg := 0; seg < cfg.Nand.Segments; seg++ {
		switch {
		case dev.SegmentHealth(seg) == nand.Retired:
			// Belongs to neither pool: a grown bad block stays out of service.
		case segUsed[seg]:
			used = append(used, segOrder{seg, segMaxSeq[seg]})
		default:
			f.freeSegs = append(f.freeSegs, seg)
		}
	}
	sort.Slice(used, func(i, j int) bool { return used[i].seq < used[j].seq })
	for _, u := range used {
		f.usedSegs = append(f.usedSegs, u.seg)
	}
	f.segLastSeq = make([]uint64, cfg.Nand.Segments)
	copy(f.segLastSeq, segMaxSeq)
	if len(f.usedSegs) > 0 {
		last := f.usedSegs[len(f.usedSegs)-1]
		// The head resumes at the newest segment if it still has room — and
		// is healthy; appending onto suspect media would repeat the failure
		// that made it suspect.
		if next := dev.NextFreeInSegment(last); next < cfg.Nand.PagesPerSegment && dev.SegmentHealth(last) == nand.Healthy {
			f.headSeg, f.headIdx = last, next
		} else {
			if len(f.freeSegs) == 0 {
				return nil, now, ErrDeviceFull
			}
			f.headSeg = f.freeSegs[0]
			f.freeSegs = f.freeSegs[1:]
			f.headIdx = 0
			f.usedSegs = append(f.usedSegs, f.headSeg)
		}
	} else {
		if len(f.freeSegs) == 0 {
			return nil, now, ErrDeviceFull
		}
		f.headSeg = f.freeSegs[0]
		f.freeSegs = f.freeSegs[1:]
		f.headIdx = 0
		f.usedSegs = append(f.usedSegs, f.headSeg)
	}
	// Accounting entries start stale (their caches were never built), in
	// final usedSegs order so victim tie-breaks match a linear scan; the
	// first selection decision rebuilds them against the recovered epochs.
	f.acct = newGCAcct(f)
	for _, s := range f.usedSegs {
		f.acct.track(s, false)
	}
	// Reconstruction CPU cost: proportional to processed translations.
	now = now.Add(sim.Duration(len(data)) * cfg.ReconstructCPUPerEntry)
	f.maybeScheduleGC(now)
	return f, now, nil
}

// nearestSnapshotAncestor walks the epoch graph upward from e's parent and
// returns the first epoch frozen into a snapshot.
func (f *FTL) nearestSnapshotAncestor(e bitmap.Epoch) *Snapshot {
	p, ok := f.epochParent[e]
	for ok {
		if s, isSnap := f.tree.ByEpoch(p); isSnap {
			return s
		}
		p, ok = f.epochParent[p]
	}
	return nil
}

// nearestSnapshotAncestorInclusive also considers e itself.
func (f *FTL) nearestSnapshotAncestorInclusive(e bitmap.Epoch) *Snapshot {
	if s, ok := f.tree.ByEpoch(e); ok {
		return s
	}
	return f.nearestSnapshotAncestor(e)
}

// rebuildValidity reconstructs every epoch's validity map breadth-first:
// an epoch's view is its parent's view overlaid with its own last-write-
// wins translations, applied to the CoW store as differences.
func (f *FTL) rebuildValidity(data []recData) error {
	// Group data by epoch, resolving within-epoch overwrites.
	type winner struct {
		addr nand.PageAddr
		seq  uint64
	}
	perEpoch := make(map[bitmap.Epoch]map[uint64]winner)
	for _, d := range data {
		m := perEpoch[d.epoch]
		if m == nil {
			m = make(map[uint64]winner)
			perEpoch[d.epoch] = m
		}
		w, ok := m[d.lba]
		if !ok || d.seq > w.seq || (d.seq == w.seq && d.addr > w.addr) {
			m[d.lba] = winner{addr: d.addr, seq: d.seq}
		}
	}

	// children lists for BFS.
	children := make(map[bitmap.Epoch][]bitmap.Epoch)
	for e, p := range f.epochParent {
		children[p] = append(children[p], e)
	}
	for _, c := range children {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}

	// BFS from the root epoch 1.
	type qent struct {
		epoch  bitmap.Epoch
		parent bitmap.Epoch
		view   map[uint64]winner // lba -> live block as of this epoch
	}
	if err := f.vstore.CreateEpoch(1, bitmap.NoParent); err != nil {
		return err
	}
	rootView := make(map[uint64]winner)
	queue := []qent{{epoch: 1, parent: bitmap.NoParent, view: rootView}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]

		// Overlay this epoch's own winners onto the inherited view,
		// mirroring the inherit-then-diverge behaviour of the live system.
		own := perEpoch[cur.epoch]
		// Deterministic order for reproducibility.
		lbas := make([]uint64, 0, len(own))
		for lba := range own {
			lbas = append(lbas, lba)
		}
		sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
		for _, lba := range lbas {
			w := own[lba]
			if old, ok := cur.view[lba]; ok {
				f.vstore.Clear(cur.epoch, int64(old.addr))
			}
			f.vstore.Set(cur.epoch, int64(w.addr))
			cur.view[lba] = w
		}

		kids := children[cur.epoch]
		for i, k := range kids {
			if err := f.vstore.CreateEpoch(k, cur.epoch); err != nil {
				return err
			}
			kv := cur.view
			if i < len(kids)-1 {
				// Siblings diverge: all but the last need their own copy.
				kv = make(map[uint64]winner, len(cur.view))
				for lba, w := range cur.view {
					kv[lba] = w
				}
			}
			queue = append(queue, qent{epoch: k, parent: cur.epoch, view: kv})
		}
	}
	return nil
}
