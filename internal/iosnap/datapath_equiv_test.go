package iosnap

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"iosnap/internal/faultinject"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// The batched data path and the per-sector reference path share one
// virtual-time skeleton, so on any fault-free workload — including one with
// snapshot churn — they must agree bit-for-bit: per-op completion times,
// errors, Stats (except MapMemory: bulk-loaded leaves pack differently than
// organically grown ones), and the device image.

func equivConfig(reference bool) Config {
	nc := nand.DefaultConfig()
	nc.SectorSize = 512
	nc.PagesPerSegment = 32
	nc.Segments = 32
	nc.Channels = 4
	nc.StoreData = true
	nc.ReadLatency = 2 * sim.Microsecond
	nc.ProgramLatency = 4 * sim.Microsecond
	nc.EraseLatency = 50 * sim.Microsecond
	cfg := DefaultConfig(nc)
	cfg.GCWindow = 10 * sim.Millisecond
	cfg.BitmapPageBits = 64
	cfg.CoWPageCost = 10 * sim.Microsecond
	cfg.ReferenceDataPath = reference
	return cfg
}

type equivOp struct {
	kind byte // 'w' write, 'r' read, 't' trim, 's' snapshot, 'd' delete-snap
	lba  int64
	n    int
	ver  byte
}

func genEquivOps(seed int64, userSectors int64, count, maxRun int) []equivOp {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(userSectors-1))
	ops := make([]equivOp, 0, count)
	ver := byte(1)
	seqCursor := int64(0)
	for len(ops) < count {
		n := 1 + rng.Intn(maxRun)
		var lba int64
		switch rng.Intn(3) {
		case 0:
			lba = seqCursor
			if lba+int64(n) > userSectors {
				lba = 0
			}
			seqCursor = lba + int64(n)
		case 1:
			lba = rng.Int63n(userSectors - int64(n) + 1)
		default:
			lba = int64(zipf.Uint64())
			if lba+int64(n) > userSectors {
				lba = userSectors - int64(n)
			}
		}
		switch r := rng.Intn(20); {
		case r < 10:
			ver++
			ops = append(ops, equivOp{'w', lba, n, ver})
		case r < 15:
			ops = append(ops, equivOp{'r', lba, n, 0})
		case r < 17:
			ops = append(ops, equivOp{'t', lba, n, 0})
		case r < 19:
			ops = append(ops, equivOp{'s', 0, 0, 0})
		default:
			ops = append(ops, equivOp{'d', 0, 0, 0})
		}
	}
	return ops
}

func runPattern(ss int, lba int64, n int, ver byte) []byte {
	b := make([]byte, n*ss)
	for i := range b {
		sec := lba + int64(i/ss)
		b[i] = byte(sec) ^ byte(sec>>8) ^ ver ^ byte(i)
	}
	return b
}

func deviceDigest(t *testing.T, d *nand.Device) string {
	t.Helper()
	cfg := d.Config()
	var b strings.Builder
	for seg := 0; seg < cfg.Segments; seg++ {
		for i := 0; i < cfg.PagesPerSegment; i++ {
			a := d.Addr(seg, i)
			if !d.IsProgrammed(a) {
				continue
			}
			fp, err := d.PageFingerprint(a)
			if err != nil {
				t.Fatalf("fingerprint %v: %v", a, err)
			}
			oob, err := d.PageOOB(a)
			if err != nil {
				t.Fatalf("oob %v: %v", a, err)
			}
			fmt.Fprintf(&b, "%d/%d %x %x\n", seg, i, fp, oob)
		}
	}
	return b.String()
}

func firstDigestDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: batched %q vs reference %q", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d lines", len(al), len(bl))
}

func TestDataPathEquivalenceWithSnapshots(t *testing.T) {
	for _, seed := range []int64{3, 11, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			batched, err := New(equivConfig(false), nil)
			if err != nil {
				t.Fatal(err)
			}
			reference, err := New(equivConfig(true), nil)
			if err != nil {
				t.Fatal(err)
			}
			ss := batched.SectorSize()
			ops := genEquivOps(seed, batched.cfg.UserSectors, 250, 256)

			now := sim.Time(0)
			bbuf := make([]byte, 256*ss)
			rbuf := make([]byte, 256*ss)
			var liveSnaps []SnapshotID
			for i, op := range ops {
				var bd, rd sim.Time
				var be, re error
				switch op.kind {
				case 'w':
					data := runPattern(ss, op.lba, op.n, op.ver)
					bd, be = batched.Write(now, op.lba, data)
					rd, re = reference.Write(now, op.lba, data)
				case 'r':
					bd, be = batched.Read(now, op.lba, bbuf[:op.n*ss])
					rd, re = reference.Read(now, op.lba, rbuf[:op.n*ss])
					if string(bbuf[:op.n*ss]) != string(rbuf[:op.n*ss]) {
						t.Fatalf("op %d (%c lba=%d n=%d): payload mismatch", i, op.kind, op.lba, op.n)
					}
				case 't':
					bd, be = batched.Trim(now, op.lba, int64(op.n))
					rd, re = reference.Trim(now, op.lba, int64(op.n))
				case 's':
					var bs, rs *Snapshot
					bs, bd, be = batched.CreateSnapshot(now)
					rs, rd, re = reference.CreateSnapshot(now)
					if (bs == nil) != (rs == nil) {
						t.Fatalf("op %d: snapshot presence mismatch", i)
					}
					if bs != nil {
						if bs.ID != rs.ID {
							t.Fatalf("op %d: snapshot IDs diverge: %d vs %d", i, bs.ID, rs.ID)
						}
						liveSnaps = append(liveSnaps, bs.ID)
					}
				case 'd':
					if len(liveSnaps) == 0 {
						continue
					}
					id := liveSnaps[0]
					liveSnaps = liveSnaps[1:]
					bd, be = batched.DeleteSnapshot(now, id)
					rd, re = reference.DeleteSnapshot(now, id)
				}
				if (be == nil) != (re == nil) {
					t.Fatalf("op %d (%c lba=%d n=%d): batched err %v, reference err %v", i, op.kind, op.lba, op.n, be, re)
				}
				if bd != rd {
					t.Fatalf("op %d (%c lba=%d n=%d): batched done %d, reference done %d (Δ %d)",
						i, op.kind, op.lba, op.n, bd, rd, bd.Sub(rd))
				}
				if bd > now {
					now = bd
				}
				batched.Scheduler().RunUntil(now)
				reference.Scheduler().RunUntil(now)
			}

			bs, rs := batched.Stats(), reference.Stats()
			// Bulk-loaded leaves pack tighter than organically grown ones, so
			// tree size is the one sanctioned divergence.
			bs.MapMemory, rs.MapMemory = 0, 0
			bs.MapMemoryResident, rs.MapMemoryResident = 0, 0
			if bs != rs {
				t.Fatalf("Stats diverge:\nbatched:   %+v\nreference: %+v", bs, rs)
			}
			if bdev, rdev := batched.Device().Stats(), reference.Device().Stats(); bdev != rdev {
				t.Fatalf("device Stats diverge:\nbatched:   %+v\nreference: %+v", bdev, rdev)
			}
			bdig := deviceDigest(t, batched.Device())
			rdig := deviceDigest(t, reference.Device())
			if bdig != rdig {
				t.Fatalf("device images diverge: %s", firstDigestDiff(bdig, rdig))
			}
			if bs.BatchNandCalls == 0 || bs.BatchPages <= bs.BatchNandCalls {
				t.Fatalf("batch counters implausible: %+v", bs)
			}
		})
	}
}

// TestActivatedViewEquivalence drives reads and writes through an activated
// snapshot view on both paths and demands identical times and contents.
func TestActivatedViewEquivalence(t *testing.T) {
	batched, _ := New(equivConfig(false), nil)
	reference, _ := New(equivConfig(true), nil)
	ss := batched.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 64; lba += 4 {
		d1, e1 := batched.Write(now, lba, runPattern(ss, lba, 4, 1))
		d2, e2 := reference.Write(now, lba, runPattern(ss, lba, 4, 1))
		if e1 != nil || e2 != nil || d1 != d2 {
			t.Fatalf("write lba %d: %v %v %d %d", lba, e1, e2, d1, d2)
		}
		now = d1
	}
	bs, bd, err := batched.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	rs, rd, err := reference.CreateSnapshot(now)
	if err != nil || bd != rd || bs.ID != rs.ID {
		t.Fatalf("snapshot: %v %d %d", err, bd, rd)
	}
	now = bd
	// Diverge the active view so the snapshot view must read old data.
	for lba := int64(0); lba < 64; lba += 8 {
		d1, _ := batched.Write(now, lba, runPattern(ss, lba, 8, 2))
		d2, _ := reference.Write(now, lba, runPattern(ss, lba, 8, 2))
		if d1 != d2 {
			t.Fatalf("post-snap write lba %d: %d %d", lba, d1, d2)
		}
		now = d1
	}
	bv, bd, err := batched.ActivateSync(now, bs.ID, noLimit, true)
	if err != nil {
		t.Fatal(err)
	}
	rv, rd, err := reference.ActivateSync(now, rs.ID, noLimit, true)
	if err != nil {
		t.Fatal(err)
	}
	if bd != rd {
		t.Fatalf("activation done: %d vs %d", bd, rd)
	}
	now = bd
	bbuf := make([]byte, 32*ss)
	rbuf := make([]byte, 32*ss)
	bd, e1 := bv.Read(now, 0, bbuf)
	rd, e2 := rv.Read(now, 0, rbuf)
	if e1 != nil || e2 != nil || bd != rd || string(bbuf) != string(rbuf) {
		t.Fatalf("view read: %v %v %d %d", e1, e2, bd, rd)
	}
	now = bd
	bd, e1 = bv.Write(now, 16, runPattern(ss, 16, 16, 7))
	rd, e2 = rv.Write(now, 16, runPattern(ss, 16, 16, 7))
	if e1 != nil || e2 != nil || bd != rd {
		t.Fatalf("view write: %v %v %d %d", e1, e2, bd, rd)
	}
	now = bd
	bd, e1 = bv.Read(now, 16, bbuf[:16*ss])
	rd, e2 = rv.Read(now, 16, rbuf[:16*ss])
	if e1 != nil || e2 != nil || bd != rd || string(bbuf[:16*ss]) != string(rbuf[:16*ss]) {
		t.Fatalf("view re-read: %v %v %d %d", e1, e2, bd, rd)
	}
}

// TestTrimClosedBeatsFrozen pins the check ordering regression: a frozen
// FTL that is then closed must refuse Trim with ErrClosed, exactly like
// Read and Write, not with ErrFrozen.
func TestTrimClosedBeatsFrozen(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now, err := f.Write(0, 0, make([]byte, ss))
	if err != nil {
		t.Fatal(err)
	}
	if now, err = f.Freeze(now); err != nil {
		t.Fatal(err)
	}
	if now, err = f.Close(now); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Trim(now, 0, 1); err != ErrClosed {
		t.Fatalf("Trim on frozen+closed FTL: got %v, want ErrClosed", err)
	}
	// And frozen alone still wins on an open device.
	f2 := newTestFTL(t)
	now2, err := f2.Write(0, 0, make([]byte, ss))
	if err != nil {
		t.Fatal(err)
	}
	if now2, err = f2.Freeze(now2); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Trim(now2, 0, 1); err != ErrFrozen {
		t.Fatalf("Trim on frozen FTL: got %v, want ErrFrozen", err)
	}
}

// TestPartialBatchWriteAccounting: when the device permanently fails
// mid-run, the sectors that landed stay committed and counted, and the
// returned virtual time reflects the work actually consumed.
func TestPartialBatchWriteAccounting(t *testing.T) {
	for _, reference := range []bool{false, true} {
		name := "batched"
		if reference {
			name = "reference"
		}
		t.Run(name, func(t *testing.T) {
			cfg := equivConfig(reference)
			f, err := New(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			ss := f.SectorSize()
			// The 5th program attempt enters a transient episode longer than
			// the retry budget: a permanent mid-run failure at sector 4.
			plan := faultinject.NewPlan(0, faultinject.Rule{
				Kind: faultinject.KindTransient, Op: nand.OpProgram, Seg: faultinject.AnySeg,
				AfterN: 5, Times: 100,
			})
			plan.Arm(f.Device())
			now := sim.Time(1000)
			done, err := f.Write(now, 0, runPattern(ss, 0, 8, 1))
			plan.Disarm(f.Device())
			if err == nil {
				t.Fatal("mid-run failure did not surface")
			}
			if done <= now {
				t.Fatalf("done %d does not reflect consumed time (now %d)", done, now)
			}
			st := f.Stats()
			if st.UserWrites != 4 {
				t.Fatalf("UserWrites = %d, want 4 (completed sectors)", st.UserWrites)
			}
			if st.BytesWritten != int64(4*ss) {
				t.Fatalf("BytesWritten = %d, want %d", st.BytesWritten, 4*ss)
			}
			// The completed prefix must be durably mapped and readable.
			buf := make([]byte, ss)
			for lba := int64(0); lba < 4; lba++ {
				if _, err := f.Read(done, lba, buf); err != nil {
					t.Fatalf("completed sector %d unreadable: %v", lba, err)
				}
				want := runPattern(ss, lba, 1, 1)
				if string(buf) != string(want) {
					t.Fatalf("completed sector %d corrupted", lba)
				}
			}
			// Sectors past the failure never landed: they read as zeros.
			if _, err := f.Read(done, 5, buf); err != nil {
				t.Fatal(err)
			}
			for _, c := range buf {
				if c != 0 {
					t.Fatal("unwritten sector not zero")
				}
			}
		})
	}
}

// TestPartialBatchReadAccounting: a permanent read failure mid-run counts
// only the sectors read before it.
func TestPartialBatchReadAccounting(t *testing.T) {
	for _, reference := range []bool{false, true} {
		name := "batched"
		if reference {
			name = "reference"
		}
		t.Run(name, func(t *testing.T) {
			f, err := New(equivConfig(reference), nil)
			if err != nil {
				t.Fatal(err)
			}
			ss := f.SectorSize()
			now, err := f.Write(0, 0, runPattern(ss, 0, 8, 1))
			if err != nil {
				t.Fatal(err)
			}
			readsBefore := f.Stats().UserReads
			plan := faultinject.NewPlan(0, faultinject.Rule{
				Kind: faultinject.KindTransient, Op: nand.OpRead, Seg: faultinject.AnySeg,
				AfterN: 4, Times: 100,
			})
			plan.Arm(f.Device())
			buf := make([]byte, 8*ss)
			done, err := f.Read(now, 0, buf)
			plan.Disarm(f.Device())
			if err == nil {
				t.Fatal("mid-run read failure did not surface")
			}
			if done <= now {
				t.Fatalf("done %d does not reflect consumed time (now %d)", done, now)
			}
			st := f.Stats()
			if got := st.UserReads - readsBefore; got != 3 {
				t.Fatalf("UserReads delta = %d, want 3 (completed sectors)", got)
			}
		})
	}
}
