package iosnap

import (
	"testing"

	"iosnap/internal/faultinject"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// TestCloseFailedCheckpointConsumesTime pins the Close time-accounting
// fix: a checkpoint attempt that dies mid-way still consumed real NAND and
// bus time for the chunks that landed (and the retries burned on the one
// that did not), so Close must return a clock past its entry time — it
// used to discard the partial attempt's time entirely. The failure itself
// is absorbed: it is recorded in CheckpointErrors, the close proceeds, and
// recovery falls back to the full header scan with all data intact.
func TestCloseFailedCheckpointConsumesTime(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	var err error
	for lba := int64(0); lba < 64; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// The checkpoint's second chunk page (the second distinct program
	// target after arming) enters a transient episode far longer than the
	// retry budget: one chunk lands, then the attempt fails permanently.
	plan := faultinject.NewPlan(0, faultinject.Rule{
		Kind: faultinject.KindTransient, Op: nand.OpProgram, Seg: faultinject.AnySeg,
		AfterN: 2, Times: 100,
	})
	plan.Arm(f.Device())
	done, err := f.Close(now)
	plan.Disarm(f.Device())
	if err != nil {
		t.Fatalf("Close must absorb checkpoint failures, got %v", err)
	}
	if done <= now {
		t.Fatalf("Close done %v does not reflect the partial checkpoint's time (entered at %v)", done, now)
	}
	st := f.Stats()
	if st.CheckpointErrors != 1 {
		t.Fatalf("CheckpointErrors = %d, want 1", st.CheckpointErrors)
	}
	if st.Checkpoints != 0 {
		t.Fatalf("aborted attempt must not commit, got %d checkpoints", st.Checkpoints)
	}
	if _, err := f.Close(done); err != ErrClosed {
		t.Fatalf("second Close: got %v, want ErrClosed", err)
	}
	// The log remains the source of truth: recovery must not trust the
	// aborted generation and must surface every written sector.
	f2, rnow, err := Recover(testConfig(), f.Device(), nil, done)
	if err != nil {
		t.Fatalf("recovery after failed checkpoint close: %v", err)
	}
	if f2.Stats().RecoveryTailBounded {
		t.Fatal("recovery trusted an aborted checkpoint generation")
	}
	buf := make([]byte, ss)
	for lba := int64(0); lba < 64; lba++ {
		if _, err := f2.Read(rnow, lba, buf); err != nil {
			t.Fatalf("read lba %d after recovery: %v", lba, err)
		}
		if string(buf) != string(sectorPattern(ss, lba, 1)) {
			t.Fatalf("lba %d corrupted after recovery", lba)
		}
	}
}
