package iosnap

import (
	"errors"
	"fmt"
	"sort"

	"iosnap/internal/bitmap"
	"iosnap/internal/blockdev"
	"iosnap/internal/header"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/retry"
	"iosnap/internal/sim"
	"iosnap/internal/xport"
)

// Snapshot replication (ROADMAP item 3, the paper's §7 destaging future
// work): ship a snapshot — or the delta between two snapshots — to another
// block device through the content-addressed transport in internal/xport.
//
// The sender side needs no activation. A snapshot's frozen epoch map IS its
// image (the same oracle activation uses: a page belongs to the snapshot
// iff its bit is set in the frozen epoch), so the delta between two
// snapshots is the pure bitmap comparison of their two epochs:
//
//	changed  = valid(target) AND NOT valid(base)   → ship these pages
//	obsolete = valid(base)  AND NOT valid(target)  → their LBAs, minus the
//	           changed set's LBAs, were trimmed — the delta's Deletes
//
// Comparing full epoch maps (each inherits its ancestors' CoW pages) means
// the base may be ANY live snapshot, not just an ancestor, and snapshots
// deleted between base and target cost nothing: their pages stay testable
// through inheritance.
//
// Export runs as an incremental job while foreground I/O continues — the
// only global stall is the freeze that created the snapshot. Each step
// claims the device for one segment header scan or one batched chunk read
// ("gated per segment", the ubiblk stall-and-unlock idiom), and between
// steps the cleaner is free to move blocks: exports register on f.exports
// and gcFixup re-points their collected entries exactly as it re-points
// in-flight activations.

// ErrExportAborted is the terminal error of a cancelled or invalidated
// export (e.g. its snapshot was deleted mid-export).
var ErrExportAborted = errors.New("iosnap: export aborted")

// ErrReceiveAborted simulates the receiving host dying mid-apply (the
// ReceiveOpts.AbortAfter test hook). The journal persisted so far is the
// crash artifact a resumed receive recovers from.
var ErrReceiveAborted = errors.New("iosnap: receive aborted (simulated crash)")

// ErrReplicaMismatch reports a destination device whose geometry cannot
// hold the manifest's image.
var ErrReplicaMismatch = errors.New("iosnap: replica device mismatch")

// ExportOpts parameterizes BeginExport.
type ExportOpts struct {
	// Snapshot is the target snapshot to export.
	Snapshot SnapshotID
	// Base, when non-zero, selects incremental export: only the pages that
	// changed between Base's image and Snapshot's image are shipped, plus
	// the trimmed LBAs. Base must be a live (undeleted) snapshot — the
	// cleaner only maintains validity bits of live epochs.
	Base SnapshotID
	// BaseManifestID is stamped into the delta manifest as the generation
	// the receiver must currently hold (xport.Manifest.BaseID). Zero with a
	// non-zero Base produces a delta no receiver will accept; the
	// Replicator wires this automatically.
	BaseManifestID uint64
	// Have, when non-nil, is the receiver's dedup oracle: it reports
	// whether the receiver can already materialize (lba, hash) locally.
	// Chunks it claims are listed in the manifest but not shipped.
	Have func(lba, hash uint64) bool
	// Limit rate-limits the export's scan and read steps (zero =
	// unthrottled), like activation's rate limit.
	Limit ratelimit.WorkSleep
}

// expEntry is one page of the export's ship set.
type expEntry struct {
	addr nand.PageAddr
	seq  uint64
}

// Export is an in-progress (or finished) snapshot export. It implements
// sim.Task, so it can run on the scheduler while foreground I/O continues,
// or be pumped synchronously via ExportSync.
type Export struct {
	f      *FTL
	snap   *Snapshot
	base   *Snapshot // nil = full image
	opt    ExportOpts
	budget *ratelimit.Budget

	scanList  []int
	scanPos   map[int]int
	segCursor int
	writes    map[uint64]expEntry // lba -> page valid in target, not in base
	baseOnly  map[uint64]struct{} // lbas of pages valid in base, not in target

	sortedLBAs []uint64 // read-phase order (built once after the scan)
	sorted     bool
	readIdx    int
	entries    []xport.Entry     // manifest writes, ascending lba
	chunks     map[uint64][]byte // shipped payload copies
	deduped    int64

	done        bool
	err         error
	completedAt sim.Time
	manifest    *xport.Manifest
	stream      []byte
}

// Name implements sim.Task.
func (x *Export) Name() string { return fmt.Sprintf("export(snap %d)", x.snap.ID) }

// Done reports whether the export finished (successfully or not).
func (x *Export) Done() bool { return x.done }

// Err returns the terminal error, if any.
func (x *Export) Err() error { return x.err }

// CompletedAt returns the virtual time the export finished.
func (x *Export) CompletedAt() sim.Time { return x.completedAt }

// Result returns the manifest and assembled transfer stream once Done.
func (x *Export) Result() (*xport.Manifest, []byte, error) {
	if !x.done {
		return nil, nil, ErrNotReady
	}
	if x.err != nil {
		return nil, nil, x.err
	}
	return x.manifest, x.stream, nil
}

// BeginExport starts exporting a snapshot. The diff itself is a host-side
// bitmap comparison (no device time); the device work — header scans to
// resolve LBAs, batched reads to hash and ship payloads — happens in Run
// steps that interleave with foreground I/O.
func (f *FTL) BeginExport(now sim.Time, opt ExportOpts) (*Export, sim.Time, error) {
	if f.closed {
		return nil, now, ErrClosed
	}
	if !f.cfg.Nand.StoreData {
		return nil, now, fmt.Errorf("%w: device retains no payloads (fingerprint mode)", ErrBadExport)
	}
	snap, ok := f.tree.Lookup(opt.Snapshot)
	if !ok {
		return nil, now, fmt.Errorf("%w: %d", ErrNoSuchSnapshot, opt.Snapshot)
	}
	if snap.Deleted {
		return nil, now, fmt.Errorf("%w: %d", ErrSnapshotDeleted, opt.Snapshot)
	}
	var base *Snapshot
	if opt.Base != 0 {
		base, ok = f.tree.Lookup(opt.Base)
		if !ok {
			return nil, now, fmt.Errorf("%w: base %d", ErrNoSuchSnapshot, opt.Base)
		}
		if base.Deleted {
			return nil, now, fmt.Errorf("%w: base %d", ErrSnapshotDeleted, opt.Base)
		}
	}
	x := &Export{
		f:        f,
		snap:     snap,
		base:     base,
		opt:      opt,
		budget:   ratelimitBudget(opt.Limit),
		writes:   make(map[uint64]expEntry),
		baseOnly: make(map[uint64]struct{}),
		chunks:   make(map[uint64][]byte),
	}
	if f.cfg.SelectiveScan {
		lineage := make(map[bitmap.Epoch]bool)
		for _, e := range snap.Lineage() {
			lineage[e] = true
		}
		if base != nil {
			for _, e := range base.Lineage() {
				lineage[e] = true
			}
		}
		x.scanList = f.presence.segmentsFor(lineage)
	} else {
		x.scanList = make([]int, f.cfg.Nand.Segments)
		for i := range x.scanList {
			x.scanList[i] = i
		}
	}
	x.scanPos = make(map[int]int, len(x.scanList))
	for i, seg := range x.scanList {
		x.scanPos[seg] = i
	}
	f.exports = append(f.exports, x)
	return x, now, nil
}

// inDiff classifies a data page against the export's two epoch maps.
func (x *Export) inDiff(addr nand.PageAddr) (target, baseSide bool) {
	inTgt := x.f.vstore.Test(x.snap.Epoch, int64(addr))
	inBase := x.base != nil && x.f.vstore.Test(x.base.Epoch, int64(addr))
	return inTgt && !inBase, inBase && !inTgt
}

// invalidated reports whether a snapshot the export depends on was deleted
// mid-export (the cleaner stops maintaining deleted epochs' bits, so the
// diff can no longer be trusted).
func (x *Export) invalidated() bool {
	return x.snap.Deleted || (x.base != nil && x.base.Deleted)
}

// Run implements sim.Task: one rate-limited step — a segment header scan
// while scanning, then one batched chunk read, then stream assembly.
func (x *Export) Run(now sim.Time) (sim.Time, bool) {
	if x.done {
		return 0, true
	}
	f := x.f
	if x.invalidated() {
		return x.fail(now, fmt.Errorf("%w: snapshot deleted mid-export", ErrExportAborted))
	}

	// Phase 1: resolve the diff's LBAs by scanning segment headers, one
	// segment per step (the per-segment gate: the device is claimed for one
	// scan, then foreground I/O runs again).
	if x.segCursor < len(x.scanList) {
		seg := x.scanList[x.segCursor]
		x.segCursor++
		start := now
		oobs, done, err := f.devScanSegmentOOB(now, seg)
		if err != nil {
			return x.fail(now, fmt.Errorf("iosnap: export scan of segment %d: %w", seg, err))
		}
		now = done
		for idx, oob := range oobs {
			if oob == nil {
				continue
			}
			h, err := header.Unmarshal(oob)
			if err != nil {
				f.stats.TornPagesSkipped++
				continue
			}
			if h.Type != header.TypeData {
				continue
			}
			addr := f.dev.Addr(seg, idx)
			tgt, bas := x.inDiff(addr)
			if tgt {
				if cur, ok := x.writes[h.LBA]; !ok || h.Seq > cur.seq {
					x.writes[h.LBA] = expEntry{addr: addr, seq: h.Seq}
				}
			} else if bas {
				x.baseOnly[h.LBA] = struct{}{}
			}
		}
		if sleep, exhausted := x.budget.Charge(now.Sub(start)); exhausted {
			return now.Add(sleep), false
		}
		return now, false
	}

	// Scan finished: fix the read order once.
	if !x.sorted {
		x.sortedLBAs = make([]uint64, 0, len(x.writes))
		for lba := range x.writes {
			x.sortedLBAs = append(x.sortedLBAs, lba)
		}
		sort.Slice(x.sortedLBAs, func(a, b int) bool { return x.sortedLBAs[a] < x.sortedLBAs[b] })
		x.sorted = true
	}

	// Phase 2: read, hash, and (unless the receiver already has the
	// content) retain one batch of pages. Addresses are looked up at
	// submission time — the cleaner may have moved pages since the scan,
	// and gcFixup keeps x.writes current.
	if x.readIdx < len(x.sortedLBAs) {
		start := now
		lbas := x.sortedLBAs[x.readIdx:]
		if len(lbas) > exportChunk {
			lbas = lbas[:exportChunk]
		}
		addrs := make([]nand.PageAddr, len(lbas))
		for i, lba := range lbas {
			addrs[i] = x.writes[lba].addr
		}
		datas, _, k, done, err := f.devReadPages(now, addrs)
		now = done
		for i := 0; i < k; i++ {
			lba := lbas[i]
			hash := xport.HashChunk(datas[i])
			x.entries = append(x.entries, xport.Entry{LBA: lba, Hash: hash})
			if x.opt.Have != nil && x.opt.Have(lba, hash) {
				x.deduped++
			} else {
				x.chunks[lba] = append([]byte(nil), datas[i]...)
			}
		}
		if err != nil {
			failed := lbas[len(lbas)-1]
			if k < len(lbas) {
				failed = lbas[k]
			}
			return x.fail(now, fmt.Errorf("iosnap: export read of LBA %d: %w", failed, err))
		}
		x.readIdx += k
		if sleep, exhausted := x.budget.Charge(now.Sub(start)); exhausted {
			return now.Add(sleep), false
		}
		if x.readIdx < len(x.sortedLBAs) {
			return now, false
		}
	}

	// Phase 3: assemble manifest and stream (host-side only).
	deletes := make([]uint64, 0, len(x.baseOnly))
	for lba := range x.baseOnly {
		if _, rewritten := x.writes[lba]; !rewritten {
			deletes = append(deletes, lba)
		}
	}
	sort.Slice(deletes, func(a, b int) bool { return deletes[a] < deletes[b] })
	m := &xport.Manifest{
		SnapID:     uint64(x.snap.ID),
		BaseID:     x.opt.BaseManifestID,
		SectorSize: f.cfg.Nand.SectorSize,
		Sectors:    f.cfg.UserSectors,
		Writes:     x.entries,
		Deletes:    deletes,
	}
	if x.base != nil {
		m.BaseSnapID = uint64(x.base.ID)
	}
	w := xport.NewStreamWriter(m)
	var shipped int64
	for _, e := range x.entries {
		if data, ok := x.chunks[e.LBA]; ok {
			w.AddChunk(e.LBA, data)
			shipped++
		}
	}
	x.manifest = m
	x.stream = w.Close()
	f.stats.ExportChunks += shipped
	f.stats.ExportDedupHits += x.deduped
	x.done = true
	x.completedAt = now
	f.dropExport(x)
	return now, true
}

func (x *Export) fail(now sim.Time, err error) (sim.Time, bool) {
	x.err = err
	x.done = true
	x.completedAt = now
	x.f.dropExport(x)
	return now, true
}

// Cancel aborts an in-flight export.
func (x *Export) Cancel(now sim.Time) error {
	if x.done {
		return x.err
	}
	x.fail(now, ErrExportAborted)
	return nil
}

func (f *FTL) dropExport(x *Export) {
	for i, e := range f.exports {
		if e == x {
			f.exports = append(f.exports[:i], f.exports[i+1:]...)
			return
		}
	}
}

// onBlockMoved keeps an in-flight export consistent when the cleaner moves
// a block: a collected entry is re-pointed, and a block that jumps from an
// unscanned segment into an already-scanned one is classified directly
// (the same protocol as Activation.onBlockMoved).
func (x *Export) onBlockMoved(old, new nand.PageAddr, h header.Header) {
	if x.done || h.Type != header.TypeData {
		return
	}
	if cur, ok := x.writes[h.LBA]; ok && cur.addr == old {
		cur.addr = new
		x.writes[h.LBA] = cur
		return
	}
	if !x.scanWillVisit(x.f.dev.SegmentOf(old)) {
		return // already scanned: handled above if it was ours
	}
	if x.scanWillVisit(x.f.dev.SegmentOf(new)) {
		return // the scan will classify it at its new home
	}
	tgt, bas := x.inDiff(new)
	if tgt {
		if cur, ok := x.writes[h.LBA]; !ok || h.Seq > cur.seq {
			x.writes[h.LBA] = expEntry{addr: new, seq: h.Seq}
		}
	} else if bas {
		x.baseOnly[h.LBA] = struct{}{}
	}
}

func (x *Export) scanWillVisit(seg int) bool {
	pos, inList := x.scanPos[seg]
	return inList && pos >= x.segCursor
}

// ExportSync runs an export to completion, returning the manifest and the
// transfer stream. Foreground concurrency is the caller's choice: use
// BeginExport + Run (or the scheduler) to interleave.
func (f *FTL) ExportSync(now sim.Time, opt ExportOpts) (*xport.Manifest, []byte, sim.Time, error) {
	x, t, err := f.BeginExport(now, opt)
	if err != nil {
		return nil, nil, now, err
	}
	for !x.done {
		next, fin := x.Run(t)
		if fin {
			break
		}
		if next < t {
			next = t
		}
		t = next
	}
	if x.err != nil {
		return nil, nil, t, x.err
	}
	return x.manifest, x.stream, x.completedAt, nil
}

// ReceiveOpts parameterizes ReceiveInto.
type ReceiveOpts struct {
	// Base is the manifest of the generation currently on the destination:
	// required to accept a delta (its ID must equal the delta's BaseID) and
	// to materialize deduplicated chunks locally. nil = bare destination.
	Base *xport.Manifest
	// Journal, when non-nil, resumes an interrupted receive of the SAME
	// transfer from its persisted journal bytes. A journal from a different
	// transfer is refused (xport.ErrWrongTransfer); a damaged journal is
	// refused (xport.ErrBadJournal) — the caller decides to restart fresh.
	Journal []byte
	// Persist, when non-nil, is called with encoded journal bytes at every
	// durability point (after the clear phase, every PersistEvery applied
	// chunks, and at commit). This is the receiver's crash-consistency
	// contract: what Persist saw is what a resume can rely on — so a
	// Persist failure aborts the receive. Swallowing it would let the
	// receive "commit" against a journal that never became durable, and a
	// crash after that leaves a resume trusting state that does not exist.
	Persist func(journal []byte) error
	// PersistEvery is the applied-chunk batch between journal persists
	// (default 32).
	PersistEvery int
	// AbortAfter, when positive, aborts the receive with ErrReceiveAborted
	// after that many chunk writes — the crash-mid-receive test hook. The
	// journal is persisted before aborting.
	AbortAfter int
}

// Receipt summarizes one ReceiveInto call.
type Receipt struct {
	Manifest *xport.Manifest
	Journal  *xport.Journal
	Applied  int  // chunk writes performed by this call
	Skipped  int  // entries already durable from a prior attempt
	Deduped  int  // entries materialized from local base content
	Resumed  bool // this call continued a persisted journal
}

// ReceiveInto applies a transfer stream to dst. The stream is validated
// end to end BEFORE the device is touched — a truncated, reordered-into-
// garbage, or bit-flipped stream fails atomically with no mutation. After
// validation the apply itself is journaled: an interrupted apply (crash,
// AbortAfter) resumes from the persisted journal, re-applying only what
// never became durable, and the import is complete exactly when the
// journal commits.
func ReceiveInto(dst blockdev.Device, now sim.Time, stream []byte, opt ReceiveOpts) (*Receipt, sim.Time, error) {
	// ---- Validation pass: no device mutation below until it finishes. ----
	m, shipped, err := scanStream(stream)
	if err != nil {
		return nil, now, err
	}
	id := m.ID()
	if m.SectorSize != dst.SectorSize() || m.Sectors > dst.Sectors() {
		return nil, now, fmt.Errorf("%w: manifest %d×%d vs device %d×%d",
			ErrReplicaMismatch, m.Sectors, m.SectorSize, dst.Sectors(), dst.SectorSize())
	}
	if m.IsDelta() {
		if opt.Base == nil {
			return nil, now, fmt.Errorf("%w: delta received on a bare destination", xport.ErrBaseMismatch)
		}
		if opt.Base.ID() != m.BaseID {
			return nil, now, fmt.Errorf("%w: delta base %#x, destination holds %#x",
				xport.ErrBaseMismatch, m.BaseID, opt.Base.ID())
		}
	}
	rec := &Receipt{Manifest: m}
	if opt.Journal != nil {
		j, err := xport.DecodeJournal(opt.Journal)
		if err != nil {
			return nil, now, err
		}
		if j.ManifestID != id {
			return nil, now, fmt.Errorf("%w: journal for %#x, stream is %#x",
				xport.ErrWrongTransfer, j.ManifestID, id)
		}
		rec.Journal = j
		rec.Resumed = true
	} else {
		rec.Journal = xport.NewJournal(id)
	}
	j := rec.Journal
	persistEvery := opt.PersistEvery
	if persistEvery <= 0 {
		persistEvery = 32
	}
	persist := func() error {
		if opt.Persist != nil {
			if err := opt.Persist(j.Encode()); err != nil {
				return fmt.Errorf("iosnap: persisting receive journal: %w", err)
			}
		}
		return nil
	}

	// ---- Dedup phase: verify locally-materialized entries first, while
	// their source sectors are untouched by this apply. A deduplicated
	// entry's content already sits at the SAME lba (the oracle only claims
	// same-lba matches), so this phase reads and hashes without writing —
	// idempotent across resumes. ----
	ss := m.SectorSize
	buf := make([]byte, ss)
	for _, e := range m.Writes {
		if _, isShipped := shipped[e.LBA]; isShipped {
			continue
		}
		if j.Applied(e.LBA) {
			rec.Skipped++
			continue
		}
		be, ok := xport.Entry{}, false
		if opt.Base != nil {
			be, ok = opt.Base.Find(e.LBA)
		}
		if !ok || be.Hash != e.Hash {
			return rec, now, fmt.Errorf("%w: no chunk and no local content for LBA %d", xport.ErrTruncated, e.LBA)
		}
		done, err := dst.Read(now, int64(e.LBA), buf)
		if err != nil {
			return rec, now, fmt.Errorf("iosnap: dedup read of LBA %d: %w", e.LBA, err)
		}
		now = done
		if xport.HashChunk(buf) != e.Hash {
			return rec, now, fmt.Errorf("%w: local content for LBA %d", xport.ErrHashMismatch, e.LBA)
		}
		j.MarkApplied(e.LBA)
		rec.Deduped++
	}

	// ---- Clear phase (journaled): a delta trims its Deletes; a full image
	// trims every sector the manifest does not define, so the finished
	// replica equals the image exactly — not the image layered over stale
	// sectors. ----
	if !j.DeletesDone {
		if m.IsDelta() {
			for _, lba := range m.Deletes {
				done, err := clearSectors(dst, now, int64(lba), 1, buf)
				if err != nil {
					return rec, now, fmt.Errorf("iosnap: clearing LBA %d: %w", lba, err)
				}
				now = done
			}
		} else {
			var next int64
			for _, e := range m.Writes {
				if int64(e.LBA) > next {
					done, err := clearSectors(dst, now, next, int64(e.LBA)-next, buf)
					if err != nil {
						return rec, now, fmt.Errorf("iosnap: clearing [%d,%d): %w", next, e.LBA, err)
					}
					now = done
				}
				next = int64(e.LBA) + 1
			}
			if next < m.Sectors {
				done, err := clearSectors(dst, now, next, m.Sectors-next, buf)
				if err != nil {
					return rec, now, fmt.Errorf("iosnap: clearing [%d,%d): %w", next, m.Sectors, err)
				}
				now = done
			}
		}
		j.DeletesDone = true
		if err := persist(); err != nil {
			return rec, now, err
		}
	}

	// ---- Apply phase (journaled): shipped chunks land in ascending LBA
	// order; every write is hash-verified bytes (VerifyChunk ran in the
	// validation pass) and becomes durable in the journal in batches. ----
	order := make([]uint64, 0, len(shipped))
	for lba := range shipped {
		order = append(order, lba)
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	sincePersist := 0
	for _, lba := range order {
		if j.Applied(lba) {
			rec.Skipped++
			continue
		}
		done, err := dst.Write(now, int64(lba), shipped[lba])
		if err != nil {
			perr := persist() // best-effort journal of what DID land
			return rec, now, errors.Join(fmt.Errorf("iosnap: applying LBA %d: %w", lba, err), perr)
		}
		now = done
		j.MarkApplied(lba)
		rec.Applied++
		sincePersist++
		if sincePersist >= persistEvery {
			if err := persist(); err != nil {
				return rec, now, err
			}
			sincePersist = 0
		}
		if opt.AbortAfter > 0 && rec.Applied >= opt.AbortAfter {
			if err := persist(); err != nil {
				return rec, now, err
			}
			return rec, now, ErrReceiveAborted
		}
	}

	j.Committed = true
	if err := persist(); err != nil {
		// The commit record never became durable: the transfer is NOT
		// complete, and the in-memory journal must say so too.
		j.Committed = false
		return rec, now, err
	}
	return rec, now, nil
}

// scanStream validates every frame of a transfer stream and returns the
// manifest plus the shipped chunks (lba -> payload, aliasing stream).
func scanStream(stream []byte) (*xport.Manifest, map[uint64][]byte, error) {
	s := xport.NewScanner(stream)
	if !s.More() {
		return nil, nil, fmt.Errorf("%w: empty stream", xport.ErrTruncated)
	}
	first, err := s.Next()
	if err != nil {
		return nil, nil, err
	}
	if first.Type != xport.FrameManifest {
		return nil, nil, fmt.Errorf("%w: stream does not start with a manifest", xport.ErrBadStream)
	}
	m := first.Manifest
	id := m.ID()
	shipped := make(map[uint64][]byte)
	sawEnd := false
	for s.More() {
		if sawEnd {
			return nil, nil, fmt.Errorf("%w: frames after the end frame", xport.ErrBadStream)
		}
		f, err := s.Next()
		if err != nil {
			return nil, nil, err
		}
		switch f.Type {
		case xport.FrameChunk:
			if err := xport.VerifyChunk(m, id, f); err != nil {
				return nil, nil, err
			}
			if _, dup := shipped[f.LBA]; dup {
				return nil, nil, fmt.Errorf("%w: duplicate chunk for LBA %d", xport.ErrBadStream, f.LBA)
			}
			shipped[f.LBA] = f.Data
		case xport.FrameEnd:
			if f.TransferID != id {
				return nil, nil, fmt.Errorf("%w: end frame tagged %#x", xport.ErrWrongTransfer, f.TransferID)
			}
			if f.Chunks != uint64(len(shipped)) {
				return nil, nil, fmt.Errorf("%w: end frame promises %d chunks, stream carries %d",
					xport.ErrTruncated, f.Chunks, len(shipped))
			}
			sawEnd = true
		default:
			return nil, nil, fmt.Errorf("%w: unexpected frame type %d", xport.ErrBadStream, f.Type)
		}
	}
	if !sawEnd {
		return nil, nil, fmt.Errorf("%w: no end frame", xport.ErrTruncated)
	}
	return m, shipped, nil
}

// clearSectors trims [lba, lba+n) on dst, falling back to zero-writes when
// the device has no Trim. buf is sector-sized scratch (clobbered).
func clearSectors(dst blockdev.Device, now sim.Time, lba, n int64, buf []byte) (sim.Time, error) {
	if tr, ok := dst.(blockdev.Trimmer); ok {
		return tr.Trim(now, lba, n)
	}
	for i := range buf {
		buf[i] = 0
	}
	for i := int64(0); i < n; i++ {
		done, err := dst.Write(now, lba+i, buf)
		if err != nil {
			return now, err
		}
		now = done
	}
	return now, nil
}

// VerifyReplica re-reads every sector the manifest defines from dst and
// hashes it against the manifest; delta Deletes are checked to read as
// zeros. It returns the mismatching LBAs (read errors count as mismatches:
// either way the sector's content cannot be trusted).
func VerifyReplica(dst blockdev.Device, now sim.Time, m *xport.Manifest) (mismatches []uint64, done sim.Time, err error) {
	if m.SectorSize != dst.SectorSize() {
		return nil, now, fmt.Errorf("%w: manifest sector %d vs device %d",
			ErrReplicaMismatch, m.SectorSize, dst.SectorSize())
	}
	buf := make([]byte, m.SectorSize)
	for _, e := range m.Writes {
		d, rerr := dst.Read(now, int64(e.LBA), buf)
		if rerr != nil {
			mismatches = append(mismatches, e.LBA)
			continue
		}
		now = d
		if xport.HashChunk(buf) != e.Hash {
			mismatches = append(mismatches, e.LBA)
		}
	}
	zero := xport.HashChunk(make([]byte, m.SectorSize))
	for _, lba := range m.Deletes {
		d, rerr := dst.Read(now, int64(lba), buf)
		if rerr != nil {
			mismatches = append(mismatches, lba)
			continue
		}
		now = d
		if xport.HashChunk(buf) != zero {
			mismatches = append(mismatches, lba)
		}
	}
	return mismatches, now, nil
}

// Replicator drives end-to-end replication from a source FTL to a
// destination block device: export, transfer (with optional injected
// stream damage), journaled receive, verify, and bounded retry. It tracks
// the destination's committed generation so successive calls replicate
// incrementally and deduplicate unchanged content.
type Replicator struct {
	Src *FTL
	Dst blockdev.Device
	// Policy bounds the receive/verify retry loop (zero = single attempt).
	Policy retry.Policy
	// Limit rate-limits the export job.
	Limit ratelimit.WorkSleep
	// Mangle, when non-nil, damages the wire per attempt — the stream
	// fault-injection hook (attempt is 1-based; return the stream
	// unmodified to stop injecting).
	Mangle func(attempt int, stream []byte) []byte
	// Persist, when non-nil, observes journal bytes at every durability
	// point (the CLI writes them to a file). A Persist failure aborts the
	// replication attempt: the resume contract is only as good as what
	// actually reached stable storage.
	Persist func(journal []byte) error

	gen     *xport.Manifest
	journal []byte
}

// Generation returns the destination's committed generation manifest (nil
// before the first successful replication).
func (r *Replicator) Generation() *xport.Manifest { return r.gen }

// Restore installs previously persisted state (committed generation and,
// when resuming a crashed transfer, its journal) — the CLI's path to
// resuming across process restarts.
func (r *Replicator) Restore(gen *xport.Manifest, journal []byte) {
	r.gen = gen
	r.journal = journal
}

// Journal returns the in-flight transfer's persisted journal bytes (nil
// when the last transfer committed).
func (r *Replicator) Journal() []byte { return r.journal }

// Replicate ships snapshot snap to the destination. With base != 0 (and a
// committed generation present) the transfer is incremental; otherwise a
// full image. Returns the committed manifest.
//
// Failure semantics: stream-shape damage (truncation, bit flips, chunk
// hash mismatches) and verify failures are retried within Policy's budget,
// with sectors that failed verification re-applied from the stream; errors
// that survive the budget — and non-retryable errors — leave the
// destination's committed generation unchanged (an interrupted apply's
// journal is kept so the next call resumes it).
func (r *Replicator) Replicate(now sim.Time, snap, base SnapshotID) (*xport.Manifest, sim.Time, error) {
	opt := ExportOpts{Snapshot: snap, Base: base, Limit: r.Limit}
	if base != 0 {
		if r.gen == nil {
			return nil, now, fmt.Errorf("%w: incremental replicate with no committed generation", xport.ErrBaseMismatch)
		}
		opt.BaseManifestID = r.gen.ID()
	}
	if r.gen != nil {
		g := r.gen
		opt.Have = func(lba, hash uint64) bool {
			e, ok := g.Find(lba)
			return ok && e.Hash == hash
		}
	}
	m, stream, done, err := r.Src.ExportSync(now, opt)
	if err != nil {
		return nil, now, err
	}
	now = done

	attempt := 0
	done, retries, err := r.Policy.DoRetryable(now, xport.Retryable, func(at sim.Time) (sim.Time, error) {
		attempt++
		wire := stream
		if r.Mangle != nil {
			wire = r.Mangle(attempt, wire)
		}
		rec, d, rerr := ReceiveInto(r.Dst, at, wire, ReceiveOpts{
			Base:    r.gen,
			Journal: r.journal,
			Persist: r.persistJournal,
		})
		if rec != nil && rec.Resumed {
			r.Src.stats.ImportResumes++
		}
		if rerr != nil {
			return d, rerr
		}
		mism, d2, verr := VerifyReplica(r.Dst, d, m)
		if verr != nil {
			return d2, verr
		}
		if len(mism) > 0 {
			// Re-open the journal for exactly the failed sectors so the next
			// attempt re-applies them from the already-verified stream.
			r.Src.stats.VerifyMismatches += int64(len(mism))
			for _, lba := range mism {
				rec.Journal.Unmark(lba)
			}
			rec.Journal.Committed = false
			if perr := r.persistJournal(rec.Journal.Encode()); perr != nil {
				return d2, perr
			}
			return d2, fmt.Errorf("%w: %d sectors failed verification", xport.ErrHashMismatch, len(mism))
		}
		return d2, nil
	})
	r.Src.stats.ImportRetries += retries
	if err != nil {
		return nil, done, err
	}
	r.gen = m
	r.journal = nil
	return m, done, nil
}

func (r *Replicator) persistJournal(b []byte) error {
	r.journal = b
	if r.Persist != nil {
		if err := r.Persist(b); err != nil {
			return fmt.Errorf("iosnap: persisting replication journal: %w", err)
		}
	}
	return nil
}
