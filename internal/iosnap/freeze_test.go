package iosnap

import (
	"bytes"
	"errors"
	"testing"

	"iosnap/internal/sim"
)

func TestFreezeBlocksWrites(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now, _ := f.Write(0, 0, sectorPattern(ss, 0, 1))
	now, err := f.Freeze(now)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}
	if _, err := f.Write(now, 1, sectorPattern(ss, 1, 1)); !errors.Is(err, ErrFrozen) {
		t.Fatalf("write while frozen: %v", err)
	}
	if _, err := f.Trim(now, 0, 1); !errors.Is(err, ErrFrozen) {
		t.Fatalf("trim while frozen: %v", err)
	}
	// Reads and snapshot creation still work.
	buf := make([]byte, ss)
	if _, err := f.Read(now, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, 0, 1)) {
		t.Fatal("read wrong while frozen")
	}
	if _, _, err := f.CreateSnapshot(now); err != nil {
		t.Fatalf("snapshot while frozen: %v", err)
	}
	now, err = f.Unfreeze(now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(now, 1, sectorPattern(ss, 1, 1)); err != nil {
		t.Fatalf("write after unfreeze: %v", err)
	}
}

func TestFreezeBlocksWritableViews(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now, _ := f.Write(0, 0, sectorPattern(ss, 0, 1))
	snap, now, _ := f.CreateSnapshot(now)
	view, now, err := f.ActivateSync(now, snap.ID, noLimit, true)
	if err != nil {
		t.Fatal(err)
	}
	now, _ = f.Freeze(now)
	if _, err := view.Write(now, 0, sectorPattern(ss, 0, 2)); !errors.Is(err, ErrFrozen) {
		t.Fatalf("view write while frozen: %v", err)
	}
}

func TestFrozenSnapshotConvenience(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now, _ := f.Write(0, 0, sectorPattern(ss, 0, 1))
	snap, now, err := f.FrozenSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || f.Frozen() {
		t.Fatal("FrozenSnapshot left device frozen or returned nil")
	}
	if _, err := f.Write(now, 1, sectorPattern(ss, 1, 1)); err != nil {
		t.Fatalf("write after FrozenSnapshot: %v", err)
	}
	var zero sim.Time
	_ = zero
}

func TestFreezeAfterCloseFails(t *testing.T) {
	f := newTestFTL(t)
	f.Close(0)
	if _, err := f.Freeze(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("freeze after close: %v", err)
	}
	if _, err := f.Unfreeze(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("unfreeze after close: %v", err)
	}
}
