package iosnap

import (
	"testing"

	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// buildCheckpointedDevice fills a 128-segment device with a churned
// workload and two snapshots, then closes it cleanly so an anchored
// checkpoint generation is on the log. Both recovery benchmarks mount the
// same crashed-at-Close image.
func buildCheckpointedDevice(b *testing.B) (Config, *nand.Device, sim.Time) {
	b.Helper()
	nc := testConfig().Nand
	nc.Segments = 128
	nc.PagesPerSegment = 32
	cfg := DefaultConfig(nc) // rederive UserSectors for the larger geometry
	cfg.GCWindow = 10 * sim.Millisecond
	cfg.BitmapPageBits = 64
	cfg.CoWPageCost = 10 * sim.Microsecond
	f, err := New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	ss := f.SectorSize()
	rng := sim.NewRNG(1)
	now := sim.Time(0)
	for i := 0; i < 2500; i++ {
		f.sched.RunUntil(now)
		lba := rng.Int63n(400)
		d, err := f.Write(now, lba, sectorPattern(ss, lba, byte(i%250+1)))
		if err != nil {
			b.Fatalf("write %d: %v", i, err)
		}
		now = d
		if i == 800 || i == 1700 {
			if _, d, err := f.CreateSnapshot(now); err == nil {
				now = d
			}
		}
	}
	now = f.sched.Drain(now)
	now, err = f.Close(now)
	if err != nil {
		b.Fatal(err)
	}
	return cfg, f.Device(), now
}

// BenchmarkRecoverTailBounded mounts from the anchored checkpoint, scanning
// only the log tail. The hdrpages/op and vus/op metrics are deterministic
// virtual quantities (header pages scanned; virtual mount time in µs) —
// compare them against BenchmarkRecoverFullScan for the tail-bounded win.
func BenchmarkRecoverTailBounded(b *testing.B) {
	cfg, dev, now := buildCheckpointedDevice(b)
	anchor := dev.Anchor()
	var pages int64
	var vtime sim.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.SetAnchor(anchor)
		r, done, err := Recover(cfg, dev, nil, now)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Stats().RecoveryTailBounded {
			b.Fatal("benchmark device did not mount tail-bounded")
		}
		pages = r.Stats().RecoveryHeaderPages
		vtime = done.Sub(now)
	}
	b.ReportMetric(float64(pages), "hdrpages/op")
	b.ReportMetric(vtime.Microseconds(), "vus/op")
}

// BenchmarkRecoverFullScan mounts the same image by the exhaustive header
// scan the vanilla recovery path always performs.
func BenchmarkRecoverFullScan(b *testing.B) {
	cfg, dev, now := buildCheckpointedDevice(b)
	anchor := dev.Anchor()
	var pages int64
	var vtime sim.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.SetAnchor(anchor)
		r, done, err := RecoverFullScan(cfg, dev, nil, now)
		if err != nil {
			b.Fatal(err)
		}
		pages = r.Stats().RecoveryHeaderPages
		vtime = done.Sub(now)
	}
	b.ReportMetric(float64(pages), "hdrpages/op")
	b.ReportMetric(vtime.Microseconds(), "vus/op")
}
