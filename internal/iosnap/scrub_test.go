package iosnap

import (
	"testing"

	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

// scrubReadRun fills a device, optionally arms a paced scrub pass, then
// issues fixed-rate random foreground reads and reports their p99 latency
// (plus the stats, so the caller can confirm the scrubber actually ran
// during the measurement window).
func scrubReadRun(t *testing.T, scrub bool) (sim.Duration, Stats) {
	t.Helper()
	cfg := testConfig()
	cfg.Nand.Segments = 64 // headroom so GC stays out of the measurement
	if scrub {
		cfg.ScrubLimit = ratelimit.WorkSleep{Work: 100 * sim.Microsecond, Sleep: 2 * sim.Millisecond}
	}
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := cfg.Nand.SectorSize
	now := sim.Time(0)
	for lba := int64(0); lba < cfg.UserSectors; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatalf("preload LBA %d: %v", lba, err)
		}
	}
	now = f.sched.Drain(now)

	if scrub && !f.StartScrub(now) {
		t.Fatal("StartScrub refused")
	}
	rng := sim.NewRNG(7)
	rec := sim.NewLatencyRecorder(0)
	buf := make([]byte, ss)
	for i := 0; i < 1200; i++ {
		f.sched.RunUntil(now) // let pending scrub quanta contend for the device
		done, err := f.Read(now, rng.Int63n(cfg.UserSectors), buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		rec.Record(now, done.Sub(now))
		now = now.Add(100 * sim.Microsecond)
		if done > now {
			now = done
		}
	}
	st := f.Stats()
	return rec.Percentile(99), st
}

// TestScrubReadLatencyBounded is the pacing acceptance check: with the
// scrubber armed under its work/sleep budget, foreground random-read p99
// stays within 2x of the scrub-off baseline (the fig9-style fixed-rate read
// workload, short-mode sized).
func TestScrubReadLatencyBounded(t *testing.T) {
	base, _ := scrubReadRun(t, false)
	during, st := scrubReadRun(t, true)
	if st.ScrubSegments == 0 {
		t.Fatalf("scrubber never scanned a segment during the run: %+v", st)
	}
	if base <= 0 {
		t.Fatalf("degenerate baseline p99 %v", base)
	}
	if during > 2*base {
		t.Fatalf("scrub-on read p99 %v exceeds 2x scrub-off p99 %v", during, base)
	}
	t.Logf("read p99: scrub-off=%v scrub-on=%v (%.2fx), scrubbed %d segments",
		base, during, float64(during)/float64(base), st.ScrubSegments)
}
