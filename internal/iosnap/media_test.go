package iosnap

import (
	"bytes"
	"errors"
	"sort"
	"testing"

	"iosnap/internal/faultinject"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

// TestTransientWriteRetriedInvisibly: a KindTransient program episode
// shorter than the retry budget must be absorbed entirely — the write
// succeeds, the retry is counted, and nothing is marked suspect.
func TestTransientWriteRetriedInvisibly(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	plan := faultinject.NewPlan(0, faultinject.Rule{
		Kind: faultinject.KindTransient, Op: nand.OpProgram, Seg: faultinject.AnySeg,
		AfterN: 1, Times: 2, // budget is 3 attempts, so the episode clears
	})
	plan.Arm(f.Device())
	now, err := f.Write(0, 5, sectorPattern(ss, 5, 1))
	if err != nil {
		t.Fatalf("transient episode not absorbed: %v", err)
	}
	plan.Disarm(f.Device())

	st := f.Stats()
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}
	if st.MediaFailures != 0 || st.SegmentsSuspect != 0 {
		t.Fatalf("transient episode marked media suspect: %+v", st)
	}
	buf := make([]byte, ss)
	if _, err := f.Read(now, 5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, 5, 1)) {
		t.Fatal("retried write lost its data")
	}
}

// TestExhaustedTransientMarksSuspect: an episode longer than the retry
// budget is a permanent failure — the error surfaces, the segment goes
// suspect, and the head seals onto healthy media so writes keep working.
func TestExhaustedTransientMarksSuspect(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	plan := faultinject.NewPlan(0, faultinject.Rule{
		Kind: faultinject.KindTransient, Op: nand.OpProgram, Seg: faultinject.AnySeg,
		AfterN: 1, Times: 10, // outlasts the 3-attempt budget
	})
	plan.Arm(f.Device())
	if _, err := f.Write(0, 5, sectorPattern(ss, 5, 1)); !errors.Is(err, nand.ErrTransient) {
		t.Fatalf("exhausted transient: %v, want ErrTransient to surface", err)
	}
	plan.Disarm(f.Device())
	st := f.Stats()
	if st.MediaFailures != 1 || st.SegmentsSuspect != 1 {
		t.Fatalf("exhausted transient did not mark suspect: %+v", st)
	}
	now := sim.Time(0)
	var err error
	for lba := int64(0); lba < 10; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 2)); err != nil {
			t.Fatalf("write after seal: %v", err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotDataRescuedOnRetirement: retiring a segment that holds blocks
// frozen ONLY in a snapshot (overwritten in the active view) must rescue
// them through the snapshot-aware merge — afterwards the snapshot still
// activates and serves its frozen content.
func TestSnapshotDataRescuedOnRetirement(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	var err error
	for lba := int64(0); lba < 30; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite everything: the v1 blocks now live only in the snapshot.
	for lba := int64(0); lba < 30; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 2)); err != nil {
			t.Fatal(err)
		}
	}
	now = f.sched.Drain(now)

	// Retire every non-head segment holding snapshot-only data.
	retired := 0
	for {
		victim := -1
		for _, seg := range f.UsedSegments() {
			if seg != f.headSeg && f.dev.SegmentHealth(seg) == nand.Healthy {
				victim = seg
				break
			}
		}
		if victim < 0 || retired >= 2 {
			break
		}
		f.dev.MarkSuspect(victim)
		if done, err := f.rescueSegment(now, victim); err != nil {
			t.Fatalf("rescue of segment %d: %v", victim, err)
		} else {
			now = done
		}
		if f.dev.SegmentHealth(victim) != nand.Retired {
			t.Fatalf("segment %d not retired after rescue", victim)
		}
		retired++
	}
	if retired == 0 {
		t.Fatal("no segment rescued")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.RescuedPages == 0 || st.SegmentsRetired != retired {
		t.Fatalf("rescue not surfaced in stats: %+v", st)
	}

	// Active view intact.
	buf := make([]byte, ss)
	for lba := int64(0); lba < 30; lba++ {
		if _, err := f.Read(now, lba, buf); err != nil {
			t.Fatalf("active LBA %d: %v", lba, err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, 2)) {
			t.Fatalf("active LBA %d content lost", lba)
		}
	}
	// Snapshot intact: frozen v1 content survived the rescue.
	view, now, err := f.ActivateSync(now, snap.ID, ratelimit.WorkSleep{}, false)
	if err != nil {
		t.Fatal(err)
	}
	for lba := int64(0); lba < 30; lba++ {
		if _, err := view.Read(now, lba, buf); err != nil {
			t.Fatalf("snapshot LBA %d: %v", lba, err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, 1)) {
			t.Fatalf("snapshot LBA %d lost its frozen content", lba)
		}
	}
}

// TestScrubRescuesSuspectSegment: a scrub pass must find a suspect segment,
// rescue its data, retire it, and account for all of it in Stats.
func TestScrubRescuesSuspectSegment(t *testing.T) {
	cfg := testConfig()
	cfg.ScrubLimit = ratelimit.WorkSleep{Work: 50 * sim.Microsecond, Sleep: 2 * sim.Millisecond}
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 40; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	now = f.sched.Drain(now)
	victim := -1
	for _, seg := range f.UsedSegments() {
		if seg != f.headSeg {
			victim = seg
			break
		}
	}
	f.dev.MarkSuspect(victim)
	if !f.StartScrub(now) {
		t.Fatal("scrub did not start")
	}
	if f.StartScrub(now) {
		t.Fatal("second concurrent scrub pass allowed")
	}
	now = f.sched.Drain(now)

	if h := f.dev.SegmentHealth(victim); h != nand.Retired {
		t.Fatalf("suspect segment health after scrub = %v, want retired", h)
	}
	st := f.Stats()
	if st.ScrubPasses != 1 || st.ScrubRescues != 1 || st.ScrubSegments == 0 {
		t.Fatalf("scrub accounting wrong: %+v", st)
	}
	if st.RescuedPages == 0 || st.SegmentsRetired != 1 {
		t.Fatalf("rescue accounting wrong: %+v", st)
	}
	if st.ScrubLastAt == 0 {
		t.Fatal("ScrubLastAt not stamped")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ss)
	for lba := int64(0); lba < 40; lba++ {
		if _, err := f.Read(now, lba, buf); err != nil {
			t.Fatalf("LBA %d unreadable after scrub rescue: %v", lba, err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, 1)) {
			t.Fatalf("LBA %d content lost in scrub rescue", lba)
		}
	}
}

// TestScrubIntervalArmsAutomatically: with ScrubInterval set, rolling the
// log head past the interval arms a pass without any explicit StartScrub.
func TestScrubIntervalArmsAutomatically(t *testing.T) {
	cfg := testConfig()
	cfg.ScrubInterval = 50 * sim.Microsecond
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 100; lba++ {
		if now, err = f.Write(now, lba%50, sectorPattern(ss, lba, byte(lba%7+1))); err != nil {
			t.Fatal(err)
		}
	}
	now = f.sched.Drain(now)
	if st := f.Stats(); st.ScrubPasses == 0 {
		t.Fatalf("interval scrubbing never ran: %+v", st)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOutOfSpaceDegradationWithSnapshot: a snapshot pinning every block
// drives the device into graceful out-of-space degradation — writes shed
// with ErrOutOfSpace, reads keep working, trims alone cannot recover (the
// snapshot still pins the blocks), but deleting the snapshot while degraded
// works (space-freeing notes bypass the rescue reserve) and writes resume.
func TestOutOfSpaceDegradationWithSnapshot(t *testing.T) {
	cfg := testConfig()
	cfg.UserSectors = int64(cfg.Nand.Segments-1) * int64(cfg.Nand.PagesPerSegment)
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := f.SectorSize()
	now := sim.Time(0)
	// Phase 1: fill a third, freeze it in a snapshot.
	third := f.Sectors() / 3
	for lba := int64(0); lba < third; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 2: keep filling unique LBAs until the device degrades.
	sawShed := false
	written := third
	for lba := third; lba < f.Sectors(); lba++ {
		_, werr := f.Write(now, lba, sectorPattern(ss, lba, 1))
		if errors.Is(werr, ErrOutOfSpace) {
			sawShed = true
			break
		}
		if werr != nil {
			t.Fatalf("LBA %d: %v", lba, werr)
		}
		written++
	}
	if !sawShed {
		t.Fatal("never saw ErrOutOfSpace filling the advertised capacity")
	}
	st := f.Stats()
	if !st.Degraded || st.OutOfSpaceWrites == 0 {
		t.Fatalf("degradation not surfaced: %+v", st)
	}
	// Reads still served while degraded.
	buf := make([]byte, ss)
	if _, err := f.Read(now, 0, buf); err != nil {
		t.Fatalf("read while degraded: %v", err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, 0, 1)) {
		t.Fatal("read while degraded returned wrong data")
	}
	// Trimming the snapshotted range frees nothing: the snapshot pins it.
	if now, err = f.Trim(now, 0, third); err != nil {
		t.Fatalf("trim while degraded: %v", err)
	}
	if _, werr := f.Write(now, 0, sectorPattern(ss, 0, 2)); !errors.Is(werr, ErrOutOfSpace) {
		t.Fatalf("write after trim of pinned blocks: %v, want still ErrOutOfSpace", werr)
	}
	// Deleting the snapshot while degraded must work — it is the only way
	// out — and unpins the trimmed blocks.
	if now, err = f.DeleteSnapshot(now, snap.ID); err != nil {
		t.Fatalf("snapshot delete while degraded: %v", err)
	}
	var werr error
	for i := 0; i < 4; i++ { // a few attempts: the first may trigger cleaning
		if now, werr = f.Write(now, 0, sectorPattern(ss, 0, 2)); werr == nil {
			break
		}
	}
	if werr != nil {
		t.Fatalf("writes did not recover after snapshot delete: %v", werr)
	}
	if st := f.Stats(); st.Degraded {
		t.Fatal("degraded flag stuck after recovery")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRetiredSegmentSurvivesRecovery: retirement must hold across a crash,
// the retired segment staying out of both pools, while the active view AND
// the snapshot remain fully readable after recovery.
func TestRetiredSegmentSurvivesRecovery(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	var err error
	for lba := int64(0); lba < 30; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	for lba := int64(0); lba < 30; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 2)); err != nil {
			t.Fatal(err)
		}
	}
	now = f.sched.Drain(now)
	victim := -1
	for _, seg := range f.UsedSegments() {
		if seg != f.headSeg {
			victim = seg
			break
		}
	}
	f.dev.MarkSuspect(victim)
	if now, err = f.rescueSegment(now, victim); err != nil {
		t.Fatal(err)
	}
	if f.dev.SegmentHealth(victim) != nand.Retired {
		t.Fatal("setup: victim not retired")
	}

	// Crash (no Close) and recover on the same device.
	f2, now, err := Recover(f.cfg, f.dev, nil, now)
	if err != nil {
		t.Fatalf("recovery with retired segment: %v", err)
	}
	pooled := append(f2.UsedSegments(), f2.freeSegs...)
	sort.Ints(pooled)
	for _, s := range pooled {
		if s == victim {
			t.Fatal("retired segment re-pooled by recovery")
		}
	}
	if f2.headSeg == victim {
		t.Fatal("recovery resumed head on retired segment")
	}
	if err := f2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ss)
	for lba := int64(0); lba < 30; lba++ {
		if _, err := f2.Read(now, lba, buf); err != nil {
			t.Fatalf("LBA %d unreadable after recovery: %v", lba, err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, 2)) {
			t.Fatalf("LBA %d content mismatch after recovery", lba)
		}
	}
	view, now, err := f2.ActivateSync(now, snap.ID, ratelimit.WorkSleep{}, false)
	if err != nil {
		t.Fatalf("snapshot activation after recovery: %v", err)
	}
	for lba := int64(0); lba < 30; lba++ {
		if _, err := view.Read(now, lba, buf); err != nil {
			t.Fatalf("snapshot LBA %d after recovery: %v", lba, err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, 1)) {
			t.Fatalf("snapshot LBA %d content mismatch after recovery", lba)
		}
	}
}
