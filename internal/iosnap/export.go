package iosnap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"iosnap/internal/blockdev"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// Snapshot destaging (the paper's §7 future-work item: "schemes to destage
// snapshots to archival disks are required"). An activated view streams its
// contents as a portable sequence of (LBA, payload) records; ImportInto
// replays such a stream onto any block device. Destage + delete moves a
// snapshot off the flash tier entirely.

// exportMagic guards the stream format.
var exportMagic = [8]byte{'i', 'o', 's', 'n', 'a', 'p', 'X', '1'}

// ErrBadExport reports a malformed destage stream.
var ErrBadExport = errors.New("iosnap: malformed export stream")

// Export streams the view's full contents to w (ascending LBA order),
// reading each block through the device with normal timing; the returned
// time reflects the device reads. Fingerprint-mode devices (see
// nand.Config.StoreData) retain no payloads, so exporting one is refused
// loudly rather than silently streaming zeros.
func (vw *View) Export(now sim.Time, w io.Writer) (sim.Time, error) {
	if vw.v.closed {
		return now, ErrViewClosed
	}
	if !vw.f.cfg.Nand.StoreData {
		return now, fmt.Errorf("%w: device retains no payloads (fingerprint mode)", ErrBadExport)
	}
	ss := vw.f.cfg.Nand.SectorSize
	if _, err := w.Write(exportMagic[:]); err != nil {
		return now, err
	}
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(ss))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(vw.v.fmap.Len()))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(vw.snap.ID))
	if _, err := w.Write(hdr[:]); err != nil {
		return now, err
	}

	if vw.f.cfg.ReferenceDataPath {
		return vw.exportRef(now, w)
	}

	// Batched destage: the stream is read through devReadPages in chunks of
	// exportChunk, each chunk submitted as one batch (cell reads overlap
	// across channels; the read bus serializes the transfers). A destage
	// thread keeps a queue of reads posted, so chunk i+1 is submitted at
	// chunk i's completion.
	type entry struct{ lba, addr uint64 }
	entries := make([]entry, 0, vw.v.fmap.Len())
	vw.v.fmap.All(func(lba, addr uint64) bool {
		entries = append(entries, entry{lba, addr})
		return true
	})
	zero := make([]byte, ss)
	addrs := make([]nand.PageAddr, 0, exportChunk)
	for base := 0; base < len(entries); base += exportChunk {
		chunk := entries[base:]
		if len(chunk) > exportChunk {
			chunk = chunk[:exportChunk]
		}
		addrs = addrs[:0]
		for _, e := range chunk {
			addrs = append(addrs, nand.PageAddr(e.addr))
		}
		datas, _, k, done, err := vw.f.devReadPages(now, addrs)
		now = done
		for j := 0; j < k; j++ {
			var rec [8]byte
			binary.LittleEndian.PutUint64(rec[:], chunk[j].lba)
			if _, werr := w.Write(rec[:]); werr != nil {
				return now, werr
			}
			data := datas[j]
			if data == nil {
				data = zero
			}
			if _, werr := w.Write(data); werr != nil {
				return now, werr
			}
		}
		if err != nil {
			return now, fmt.Errorf("iosnap: exporting LBA %d: %w", chunk[k].lba, err)
		}
	}
	return now, nil
}

// exportChunk is the destage read queue depth: how many block reads Export
// posts to the device per batch.
const exportChunk = 256

// exportRef is the per-page reference destage loop (each read submitted at
// the previous read's completion; no channel overlap).
func (vw *View) exportRef(now sim.Time, w io.Writer) (sim.Time, error) {
	ss := vw.f.cfg.Nand.SectorSize
	var exportErr error
	zero := make([]byte, ss)
	vw.v.fmap.All(func(lba, addr uint64) bool {
		data, _, done, err := vw.f.devReadPage(now, nand.PageAddr(addr))
		if err != nil {
			exportErr = fmt.Errorf("iosnap: exporting LBA %d: %w", lba, err)
			return false
		}
		now = done
		var rec [8]byte
		binary.LittleEndian.PutUint64(rec[:], lba)
		if _, err := w.Write(rec[:]); err != nil {
			exportErr = err
			return false
		}
		if data == nil {
			data = zero
		}
		if _, err := w.Write(data); err != nil {
			exportErr = err
			return false
		}
		return true
	})
	return now, exportErr
}

// ImportInto replays an export stream onto dst, which must have the same
// sector size. It returns the completion time of the last write.
func ImportInto(dst blockdev.Device, now sim.Time, r io.Reader) (sim.Time, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return now, fmt.Errorf("%w: %v", ErrBadExport, err)
	}
	if magic != exportMagic {
		return now, fmt.Errorf("%w: bad magic", ErrBadExport)
	}
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return now, fmt.Errorf("%w: truncated header", ErrBadExport)
	}
	ss := int(binary.LittleEndian.Uint32(hdr[:4]))
	count := binary.LittleEndian.Uint64(hdr[4:12])
	if ss <= 0 {
		return now, fmt.Errorf("%w: nonsense sector size %d", ErrBadExport, ss)
	}
	if ss != dst.SectorSize() {
		return now, fmt.Errorf("%w: sector size %d != destination %d", ErrBadExport, ss, dst.SectorSize())
	}
	buf := make([]byte, ss)
	var rec [8]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return now, fmt.Errorf("%w: truncated record %d", ErrBadExport, i)
		}
		lba := binary.LittleEndian.Uint64(rec[:])
		if lba >= uint64(dst.Sectors()) {
			return now, fmt.Errorf("%w: record %d names LBA %d beyond destination (%d sectors)",
				ErrBadExport, i, lba, dst.Sectors())
		}
		if _, err := io.ReadFull(r, buf); err != nil {
			return now, fmt.Errorf("%w: truncated payload %d", ErrBadExport, i)
		}
		done, err := dst.Write(now, int64(lba), buf)
		if err != nil {
			return now, fmt.Errorf("iosnap: importing LBA %d: %w", lba, err)
		}
		now = done
	}
	return now, nil
}
