package iosnap

import (
	"errors"
	"fmt"
	"sort"

	"iosnap/internal/bitmap"
	"iosnap/internal/ftlmap"
	"iosnap/internal/header"
	"iosnap/internal/mapcache"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

// View is an activated snapshot: a block device whose forward map was
// reconstructed from the log. Readable views serve the frozen state;
// writable views (the paper's design §5.6, prototyped here as an extension)
// absorb writes into a fresh epoch without ever touching the snapshot.
type View struct {
	f    *FTL
	v    *view
	snap *Snapshot
}

// Snapshot returns the snapshot this view was activated from.
func (vw *View) Snapshot() *Snapshot { return vw.snap }

// Writable reports whether the view accepts writes.
func (vw *View) Writable() bool { return vw.v.writable }

// Epoch returns the epoch absorbing this view's writes.
func (vw *View) Epoch() bitmap.Epoch { return vw.v.epoch }

// SectorSize implements blockdev.Device.
func (vw *View) SectorSize() int { return vw.f.cfg.Nand.SectorSize }

// Sectors implements blockdev.Device.
func (vw *View) Sectors() int64 { return vw.f.cfg.UserSectors }

// MapMemory returns the reconstructed forward map's footprint in bytes
// (the right-hand column of the paper's Table 3).
func (vw *View) MapMemory() int64 { return vw.v.fmap.MemoryBytes() }

// MappedSectors returns the number of translations in the view.
func (vw *View) MappedSectors() int { return vw.v.fmap.Len() }

// Read implements blockdev.Device against the activated snapshot.
func (vw *View) Read(now sim.Time, lba int64, buf []byte) (sim.Time, error) {
	if vw.v.closed {
		return now, ErrViewClosed
	}
	_, done, err := vw.f.readVia(vw.v, now, lba, buf)
	return done, err
}

// Write implements blockdev.Device for writable views.
func (vw *View) Write(now sim.Time, lba int64, data []byte) (sim.Time, error) {
	if vw.v.closed {
		return now, ErrViewClosed
	}
	if !vw.v.writable {
		return now, ErrReadOnlyView
	}
	_, done, err := vw.f.writeVia(vw.v, now, lba, data)
	return done, err
}

// CreateSnapshot snapshots a *writable* view, forking the snapshot tree
// exactly as the paper's Figure 4 shows (activate S1, modify, create S3).
func (vw *View) CreateSnapshot(now sim.Time) (*Snapshot, sim.Time, error) {
	if vw.v.closed {
		return nil, now, ErrViewClosed
	}
	if !vw.v.writable {
		return nil, now, ErrReadOnlyView
	}
	return vw.f.createSnapshotFrom(vw.v, now)
}

// Deactivate releases the view: a note records the action, the view's map
// memory is freed, and (for writable views) any writes never captured by a
// snapshot become garbage for the cleaner.
func (vw *View) Deactivate(now sim.Time) (sim.Time, error) {
	if vw.v.closed {
		return now, ErrViewClosed
	}
	f := vw.f
	_, done, err := f.writeNote(now, header.TypeSnapDeactivate, vw.snap.ID, vw.v.epoch)
	if err != nil {
		return now, err
	}
	vw.v.closed = true
	for i, v := range f.views {
		if v == vw.v {
			f.views = append(f.views[:i], f.views[i+1:]...)
			break
		}
	}
	f.acct.bumpViewGen()
	// If this view's epoch froze into a snapshot, the *current* epoch is a
	// fresh continuation holding only un-snapshotted writes; either way the
	// view's live epoch is now garbage.
	if f.vstore.Exists(vw.v.epoch) && !f.vstore.Deleted(vw.v.epoch) {
		if _, isSnap := f.tree.ByEpoch(vw.v.epoch); !isSnap {
			if err := f.vstore.DeleteEpoch(vw.v.epoch); err != nil {
				return now, err
			}
		}
	}
	vw.v.fmap = nil
	return done, nil
}

// actEntry is one candidate translation found during the activation scan.
type actEntry struct {
	addr nand.PageAddr
	seq  uint64
}

// Activation is an in-progress (or finished) snapshot activation. It runs
// as a background task on the FTL's scheduler so its log-scan traffic
// contends with — and can be rate-limited away from — foreground I/O
// (paper §5.6, Figure 9).
type Activation struct {
	f        *FTL
	snap     *Snapshot
	writable bool
	epoch    bitmap.Epoch
	budget   *ratelimit.Budget

	scanList    []int               // segments to scan, in order
	scanPos     map[int]int         // segment -> index in scanList
	segCursor   int                 // next index into scanList
	entries     map[uint64]actEntry // lba -> current best
	reconIdx    int                 // reconstruction progress
	sorted      []ftlmap.Entry
	sortedBuilt bool

	done        bool
	completedAt sim.Time
	view        *View
	err         error

	// phase timing for experiments
	ScanTime  sim.Duration
	ReconTime sim.Duration
}

// Name implements sim.Task.
func (a *Activation) Name() string {
	return fmt.Sprintf("activate(snap %d)", a.snap.ID)
}

// Ready reports whether the activation completed.
func (a *Activation) Ready() bool { return a.done }

// Snapshot returns the snapshot being activated.
func (a *Activation) Snapshot() *Snapshot { return a.snap }

// Err returns the terminal error, if any.
func (a *Activation) Err() error { return a.err }

// CompletedAt returns the virtual time the activation finished.
func (a *Activation) CompletedAt() sim.Time { return a.completedAt }

// View returns the activated view once Ready, else an error.
func (a *Activation) View() (*View, error) {
	if !a.done {
		return nil, ErrNotReady
	}
	if a.err != nil {
		return nil, a.err
	}
	return a.view, nil
}

// Activate begins activating snapshot id. The activate note is written
// synchronously (making the operation durable and incrementing the epoch
// counter, §5.8); the scan and forward-map reconstruction proceed in the
// background under the given rate limit (zero WorkSleep = unthrottled).
// The returned time covers only the synchronous part.
func (f *FTL) Activate(now sim.Time, id SnapshotID, limit ratelimit.WorkSleep, writable bool) (*Activation, sim.Time, error) {
	act, done, err := f.beginActivation(now, id, limit, writable)
	if err != nil {
		return nil, now, err
	}
	f.sched.Schedule(done, act)
	return act, done, nil
}

// ActivateSync activates snapshot id and runs the scan/reconstruction to
// completion before returning, yielding the view and the completion time.
func (f *FTL) ActivateSync(now sim.Time, id SnapshotID, limit ratelimit.WorkSleep, writable bool) (*View, sim.Time, error) {
	act, t, err := f.beginActivation(now, id, limit, writable)
	if err != nil {
		return nil, now, err
	}
	for !act.done {
		next, fin := act.Run(t)
		if fin {
			break
		}
		if next < t {
			next = t
		}
		t = next
	}
	if act.err != nil {
		return nil, t, act.err
	}
	return act.view, act.completedAt, nil
}

func (f *FTL) beginActivation(now sim.Time, id SnapshotID, limit ratelimit.WorkSleep, writable bool) (*Activation, sim.Time, error) {
	if f.closed {
		return nil, now, ErrClosed
	}
	snap, ok := f.tree.Lookup(id)
	if !ok {
		return nil, now, fmt.Errorf("%w: %d", ErrNoSuchSnapshot, id)
	}
	if snap.Deleted {
		return nil, now, fmt.Errorf("%w: %d", ErrSnapshotDeleted, id)
	}
	// The durable note is written before any epoch state is created (same
	// order as createSnapshotFrom): if the note program fails, nothing has
	// been allocated yet, so a device fault here cannot leak a live epoch
	// that would pin snapshot blocks forever.
	f.epochCounter++
	newEpoch := f.epochCounter
	_, done, err := f.writeNote(now, header.TypeSnapActivate, id, newEpoch)
	if err != nil {
		f.epochCounter--
		return nil, now, err
	}
	if err := f.vstore.CreateEpoch(newEpoch, snap.Epoch); err != nil {
		return nil, now, fmt.Errorf("iosnap: creating activation epoch: %w", err)
	}
	f.epochParent[newEpoch] = snap.Epoch
	act := &Activation{
		f:        f,
		snap:     snap,
		writable: writable,
		epoch:    newEpoch,
		budget:   ratelimitBudget(limit),
		entries:  make(map[uint64]actEntry),
	}
	if f.cfg.SelectiveScan {
		lineage := make(map[bitmap.Epoch]bool)
		for _, e := range snap.Lineage() {
			lineage[e] = true
		}
		act.scanList = f.presence.segmentsFor(lineage)
	} else {
		act.scanList = make([]int, f.cfg.Nand.Segments)
		for i := range act.scanList {
			act.scanList[i] = i
		}
	}
	act.scanPos = make(map[int]int, len(act.scanList))
	for i, seg := range act.scanList {
		act.scanPos[seg] = i
	}
	f.activations = append(f.activations, act)
	f.stats.SnapshotActivations++
	return act, done, nil
}

// Run implements sim.Task: one rate-limited quantum of scan or
// reconstruction work.
func (a *Activation) Run(now sim.Time) (sim.Time, bool) {
	if a.done {
		return 0, true // cancelled (or already finished): drop the quantum
	}
	f := a.f
	segs := len(a.scanList)

	// Phase 1: scan the relevant log segments' headers, batched per quantum.
	if a.segCursor < segs {
		batch := f.cfg.ActivationBatch
		if a.budget.Config().Enabled() {
			batch = 1
		}
		for i := 0; i < batch && a.segCursor < segs; i++ {
			seg := a.scanList[a.segCursor]
			a.segCursor++
			start := now
			oobs, done, err := f.devScanSegmentOOB(now, seg)
			if err != nil {
				return a.fail(now, fmt.Errorf("iosnap: activation scan of segment %d: %w", seg, err))
			}
			now = done
			a.ScanTime += done.Sub(start)
			for idx, oob := range oobs {
				if oob == nil {
					continue
				}
				h, err := header.Unmarshal(oob)
				if err != nil {
					// A torn write from a previous power loss: the page holds
					// garbage, so it cannot be part of any snapshot. Tolerate
					// it — the cleaner will reclaim the page — but keep count.
					f.stats.TornPagesSkipped++
					continue
				}
				if h.Type != header.TypeData {
					continue
				}
				addr := f.dev.Addr(seg, idx)
				// The snapshot's validity map is the oracle: a page is part
				// of the snapshot iff its bit is set in the frozen epoch.
				if !f.vstore.Test(a.snap.Epoch, int64(addr)) {
					continue
				}
				if cur, ok := a.entries[h.LBA]; !ok || h.Seq > cur.seq {
					a.entries[h.LBA] = actEntry{addr: addr, seq: h.Seq}
				}
			}
			if sleep, exhausted := a.budget.Charge(done.Sub(start)); exhausted {
				return now.Add(sleep), false
			}
		}
		if a.segCursor < segs {
			return now, false
		}
	}

	// Scan finished: sort entries once for bottom-up map construction.
	// (This runs on the quantum after the last segment, since the budget
	// may have exhausted exactly on that scan.)
	if !a.sortedBuilt {
		a.sorted = make([]ftlmap.Entry, 0, len(a.entries))
		for lba, e := range a.entries {
			a.sorted = append(a.sorted, ftlmap.Entry{Key: lba, Val: uint64(e.addr)})
		}
		sort.Slice(a.sorted, func(i, j int) bool { return a.sorted[i].Key < a.sorted[j].Key })
		a.sortedBuilt = true
	}

	// Phase 2: reconstruction, charged per entry and also rate-limited.
	const reconChunk = 4096
	for a.reconIdx < len(a.sorted) {
		n := len(a.sorted) - a.reconIdx
		if n > reconChunk {
			n = reconChunk
		}
		cost := sim.Duration(n) * f.cfg.ReconstructCPUPerEntry
		now = now.Add(cost)
		a.ReconTime += cost
		a.reconIdx += n
		if sleep, exhausted := a.budget.Charge(cost); exhausted {
			return now.Add(sleep), false
		}
	}

	// Build the compact (bulk-loaded) tree and publish the view. Activated
	// views always get the in-RAM tree: only the active view's map is paged
	// (the paper's design choice — snapshot maps are rebuilt on demand).
	fm := mapcache.FromTree(ftlmap.BulkLoad(a.sorted, 1.0))
	v := &view{fmap: fm, epoch: a.epoch, writable: a.writable, parent: a.snap, fromActivation: true}
	f.views = append(f.views, v)
	// The view's epoch just moved from the "frozen" to the "backs a view"
	// class without the epoch set changing; invalidate the merge caches.
	f.acct.bumpViewGen()
	a.view = &View{f: f, v: v, snap: a.snap}
	a.done = true
	a.completedAt = now
	f.dropActivation(a)
	return now, true
}

func (a *Activation) fail(now sim.Time, err error) (sim.Time, bool) {
	a.err = err
	a.done = true
	a.completedAt = now
	a.f.dropActivation(a)
	return now, true
}

func (f *FTL) dropActivation(a *Activation) {
	for i, x := range f.activations {
		if x == a {
			f.activations = append(f.activations[:i], f.activations[i+1:]...)
			return
		}
	}
}

// onBlockMoved keeps in-flight activations consistent when the cleaner
// moves a block out from under the scan: an entry already collected is
// re-pointed, and a block that jumped from an unscanned segment into an
// already-scanned one is inserted directly.
func (a *Activation) onBlockMoved(old, new nand.PageAddr, h header.Header) {
	if a.done || h.Type != header.TypeData {
		return
	}
	if !a.f.vstore.Test(a.snap.Epoch, int64(new)) {
		return
	}
	if cur, ok := a.entries[h.LBA]; ok && cur.addr == old {
		cur.addr = new
		a.entries[h.LBA] = cur
		a.fixSorted(h.LBA, new)
		return
	}
	// A block that jumped from a not-yet-scanned segment into one the scan
	// will never (or no longer) visit must be inserted directly.
	if !a.scanWillVisit(a.f.dev.SegmentOf(old)) {
		return // already scanned: the entry existed and was handled above
	}
	if a.scanWillVisit(a.f.dev.SegmentOf(new)) {
		return // the scan will pick it up at its new home
	}
	if cur, ok := a.entries[h.LBA]; !ok || h.Seq > cur.seq {
		a.entries[h.LBA] = actEntry{addr: new, seq: h.Seq}
		a.fixSorted(h.LBA, new)
	}
}

// scanWillVisit reports whether the scan has yet to visit segment seg.
func (a *Activation) scanWillVisit(seg int) bool {
	pos, inList := a.scanPos[seg]
	return inList && pos >= a.segCursor
}

// fixSorted patches the already-sorted slice during phase 2 (rare).
func (a *Activation) fixSorted(lba uint64, addr nand.PageAddr) {
	if !a.sortedBuilt {
		return
	}
	i := sort.Search(len(a.sorted), func(i int) bool { return a.sorted[i].Key >= lba })
	if i < len(a.sorted) && a.sorted[i].Key == lba {
		a.sorted[i].Val = uint64(addr)
	}
}

// ErrCancelled is the terminal error of a cancelled activation.
var ErrCancelled = errors.New("iosnap: activation cancelled")

// Cancel aborts an in-flight activation: its remaining scan quanta become
// no-ops, its partial state is dropped, and the epoch allocated for the
// would-be view is deleted so the cleaner ignores it. Cancelling a finished
// activation returns its terminal state unchanged.
func (a *Activation) Cancel(now sim.Time) error {
	if a.done {
		return a.err
	}
	a.err = ErrCancelled
	a.done = true
	a.completedAt = now
	a.f.dropActivation(a)
	if a.f.vstore.Exists(a.epoch) && !a.f.vstore.Deleted(a.epoch) {
		if err := a.f.vstore.DeleteEpoch(a.epoch); err != nil {
			return err
		}
	}
	a.entries = nil
	a.sorted = nil
	return ErrCancelled
}
