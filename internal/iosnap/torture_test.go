package iosnap

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"iosnap/internal/faultinject"
	"iosnap/internal/header"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

func tortureConfig() Config {
	cfg := testConfig()
	cfg.Nand.Segments = 32
	return cfg
}

// actLimit keeps background activations alive across many workload steps so
// crash rules can land mid-scan.
var actLimit = ratelimit.WorkSleep{Work: 10 * sim.Microsecond, Sleep: 5 * sim.Millisecond}

func TestTortureCleanRun(t *testing.T) {
	for _, seed := range []uint64{1, 7, 1234} {
		rep, err := Torture(tortureConfig(), TortureOptions{Seed: seed, Steps: 900})
		if err != nil {
			t.Fatalf("seed %d: %v (%s)", seed, err, rep)
		}
		if rep.Checks == 0 {
			t.Fatalf("seed %d: no invariant checks ran", seed)
		}
		if rep.OpErrors != 0 {
			t.Fatalf("seed %d: %d op errors without any fault plan", seed, rep.OpErrors)
		}
	}
}

// TestTortureGCCopyError is acceptance plan 1: a program error injected into
// the cleaner's copy-forward. The clean aborts, the error lands in Stats
// instead of being swallowed, the victim stays cleanable, and the workload
// (including the log head the failed copy allocated from) keeps going.
func TestTortureGCCopyError(t *testing.T) {
	fired := false
	for _, seed := range []uint64{3, 11, 21} {
		plan := faultinject.GCCopyError(5)
		rep, err := Torture(tortureConfig(), TortureOptions{Seed: seed, Steps: 900, Plan: plan})
		if err != nil {
			t.Fatalf("seed %d: %v (%s)", seed, err, rep)
		}
		if len(rep.Fired) == 0 {
			continue // this seed never reached 5 copy-forwards
		}
		fired = true
		// The copy error surfaced somewhere: either a background clean
		// recorded it in Stats, or a forced synchronous clean propagated it
		// to the writer as an op error. Silent swallowing shows up as
		// neither.
		if rep.FinalStats.GCErrors == 0 && rep.OpErrors == 0 {
			t.Fatalf("seed %d: injected GC copy error vanished (%s)", seed, rep)
		}
		if rep.FinalStats.GCErrors > 0 && rep.FinalStats.GCLastErr == "" {
			t.Fatalf("seed %d: GCErrors=%d but GCLastErr empty", seed, rep.FinalStats.GCErrors)
		}
	}
	if !fired {
		t.Fatal("no seed ever triggered the GC copy fault; plan untested")
	}
}

// TestTortureTornSnapshotNote is acceptance plan 2: power fails while a
// snapshot-create note is being programmed, leaving a torn header at the log
// tail. Recovery must tolerate the garbage page, count it, and restore a
// consistent device on which all previously acknowledged state survives.
func TestTortureTornSnapshotNote(t *testing.T) {
	fired := false
	for _, seed := range []uint64{5, 9, 31} {
		plan := faultinject.TornNote(header.TypeSnapCreate, 2)
		rep, err := Torture(tortureConfig(), TortureOptions{Seed: seed, Steps: 900, Plan: plan})
		if err != nil {
			t.Fatalf("seed %d: %v (%s)", seed, err, rep)
		}
		if len(rep.Fired) == 0 {
			continue // fewer than 2 snapshot creates under this seed
		}
		fired = true
		if rep.Crashes != 1 || rep.Recoveries != 1 {
			t.Fatalf("seed %d: torn note must crash+recover exactly once: %s", seed, rep)
		}
		if rep.FinalStats.TornPagesSkipped == 0 {
			t.Fatalf("seed %d: recovery did not report the torn page (%s)", seed, rep)
		}
	}
	if !fired {
		t.Fatal("no seed ever tore a snapshot note; plan untested")
	}
}

// TestTortureCrashMidActivation is acceptance plan 3: power cut during an
// activation's log scan. The scan fault must propagate out of the Activation
// (not hang or succeed spuriously), and recovery must restore invariants.
func TestTortureCrashMidActivation(t *testing.T) {
	fired := false
	for _, seed := range []uint64{2, 13, 27} {
		plan := faultinject.CrashAtScan(2)
		rep, err := Torture(tortureConfig(), TortureOptions{
			Seed: seed, Steps: 900, Plan: plan, ActivationLimit: actLimit,
		})
		if err != nil {
			t.Fatalf("seed %d: %v (%s)", seed, err, rep)
		}
		if len(rep.Fired) == 0 {
			continue // no activation scanned 2 segments under this seed
		}
		fired = true
		if rep.Activations == 0 {
			t.Fatalf("seed %d: crash-at-scan fired without an activation: %s", seed, rep)
		}
		if rep.Crashes != 1 || rep.Recoveries != 1 {
			t.Fatalf("seed %d: want exactly one crash+recovery: %s", seed, rep)
		}
	}
	if !fired {
		t.Fatal("no seed ever crashed mid-activation; plan untested")
	}
}

// TestTortureRandomFaultNoise floods every operation class with seeded
// random errors: no crash, just a device that fails constantly. Every
// operation must either error or keep the model exact, and invariants must
// hold throughout.
func TestTortureRandomFaultNoise(t *testing.T) {
	plan := faultinject.RandomFaults(99, 0.02)
	rep, err := Torture(tortureConfig(), TortureOptions{Seed: 17, Steps: 600, Plan: plan})
	if err != nil {
		t.Fatalf("%v (%s)", err, rep)
	}
	if rep.OpErrors == 0 {
		t.Fatalf("2%% fault rate over 600 steps produced zero op errors (%s)", rep)
	}
}

// TestTortureDeterministicBySeed re-runs a faulted torture and demands an
// identical report — the EXPERIMENTS.md reproducibility contract.
func TestTortureDeterministicBySeed(t *testing.T) {
	// Include probabilistic read faults: verification sweeps issue reads too,
	// so any map-order dependence in the harness shows up as firings at
	// run-dependent addresses even when the summary counters agree.
	run := func() string {
		plan := faultinject.NewPlan(7,
			faultinject.Rule{Kind: faultinject.KindError, Op: nand.OpCopy, Seg: faultinject.AnySeg, Prob: 0.05},
			faultinject.Rule{Kind: faultinject.KindError, Op: nand.OpRead, Seg: faultinject.AnySeg, Prob: 0.02})
		rep, err := Torture(tortureConfig(), TortureOptions{Seed: 23, Steps: 500, Plan: plan})
		if err != nil {
			t.Fatalf("%v (%s)", err, rep)
		}
		return fmt.Sprintf("%s fired=%v", rep, rep.Fired)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seeds, different runs:\n%s\n%s", a, b)
	}
}

// replChurnPlan injects read-side faults only: transient errors and
// read-path corruption both clear on a re-read, so the retry budget can
// absorb them — the replication path must come through bit-identical
// anyway. (Program-side corruption is genuine data loss and belongs to the
// targeted replicate tests, not a model-checked storm.)
func replChurnPlan(seed uint64) *faultinject.Plan {
	return faultinject.NewPlan(seed,
		faultinject.Rule{Kind: faultinject.KindTransient, Op: nand.OpRead, Seg: faultinject.AnySeg, Prob: 0.01, Times: 1},
		faultinject.Rule{Kind: faultinject.KindCorruptData, Op: nand.OpRead, Seg: faultinject.AnySeg, Prob: 0.01, Times: 1})
}

// TestTortureExportChurn replicates snapshots to a second device while the
// snapshot-lifecycle storm runs and transient + corrupt-data faults hit the
// source's reads. Every committed replication is bit-verified against the
// frozen model inside the harness.
func TestTortureExportChurn(t *testing.T) {
	rep, err := Torture(tortureConfig(), TortureOptions{
		Seed: 42, Steps: 700, ExportChurn: true, Plan: replChurnPlan(11),
	})
	if err != nil {
		t.Fatalf("%v (%s)", err, rep)
	}
	if rep.Replications == 0 {
		t.Fatalf("export-churn run never replicated (%s)", rep)
	}
	if len(rep.Fired) == 0 {
		t.Fatalf("fault plan never fired; storm exercised nothing (%s)", rep)
	}
	if rep.FinalStats.ExportChunks == 0 {
		t.Fatalf("no chunks were ever shipped (%s)", rep)
	}
}

// TestTortureExportChurnCrashes adds power loss: the first plan crashes at
// a header scan (exports and activations both scan), the power-cycle swaps
// in a corrupt-data plan via Replan, and replication must keep working
// against the recovered source with its destination state intact.
func TestTortureExportChurnCrashes(t *testing.T) {
	var done bool
	for seed := uint64(1); seed <= 8 && !done; seed++ {
		rep, err := Torture(tortureConfig(), TortureOptions{
			Seed: seed, Steps: 700, ExportChurn: true,
			Plan: faultinject.CrashAtScan(3),
			Replan: func(cycle int) *faultinject.Plan {
				if cycle == 1 {
					return replChurnPlan(uint64(cycle) * 101)
				}
				return nil
			},
		})
		if err != nil {
			t.Fatalf("seed %d: %v (%s)", seed, err, rep)
		}
		if rep.Crashes >= 1 && rep.Replications >= 2 {
			done = true
		}
	}
	if !done {
		t.Fatal("no seed produced a crash plus post-crash replications")
	}
}

// TestTortureExportChurnDeterministic re-runs the export-churn storm and
// demands an identical report, firings and all — replication must not leak
// map-order nondeterminism into device traffic.
func TestTortureExportChurnDeterministic(t *testing.T) {
	run := func() string {
		rep, err := Torture(tortureConfig(), TortureOptions{
			Seed: 42, Steps: 500, ExportChurn: true, Plan: replChurnPlan(11),
		})
		if err != nil {
			t.Fatalf("%v (%s)", err, rep)
		}
		return fmt.Sprintf("%s fired=%v exported=%d deduped=%d resumed=%d",
			rep, rep.Fired, rep.FinalStats.ExportChunks,
			rep.FinalStats.ExportDedupHits, rep.FinalStats.ImportResumes)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seeds, different runs:\n%s\n%s", a, b)
	}
}

// --- satellite regressions -------------------------------------------------

// TestGCErrorRecordedNotSwallowed drives a background clean into an injected
// copy error and asserts the error is recorded in Stats, the device stays
// consistent, and the log head still accepts writes (the failed copy's
// allocated page was rolled back, not left as a permanent hole).
func TestGCErrorRecordedNotSwallowed(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	var err error
	for lba := int64(0); lba < 40; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	for lba := int64(0); lba < 20; lba++ { // invalidate some blocks
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 2)); err != nil {
			t.Fatal(err)
		}
	}
	now = f.sched.Drain(now)

	// Pick a victim that still holds valid data, so the clean must copy.
	pps := int64(f.cfg.Nand.PagesPerSegment)
	victim := -1
	for _, seg := range f.UsedSegments() {
		if seg == f.headSeg {
			continue
		}
		if f.CountValidMerged(int64(seg)*pps, int64(seg+1)*pps) > 0 {
			victim = seg
			break
		}
	}
	if victim < 0 {
		t.Fatal("no cleanable victim with valid data")
	}
	plan := faultinject.GCCopyError(1)
	plan.Arm(f.Device())
	if err := f.ForceClean(now, victim); err != nil {
		t.Fatal(err)
	}
	now = f.sched.Drain(now)
	plan.Disarm(f.Device())

	st := f.Stats()
	if st.GCErrors != 1 {
		t.Fatalf("GCErrors = %d, want 1 (error swallowed)", st.GCErrors)
	}
	if !strings.Contains(st.GCLastErr, "copy-forward") {
		t.Fatalf("GCLastErr = %q, want copy-forward error", st.GCLastErr)
	}
	if f.CleaningActive() {
		t.Fatal("cleaner still marked active after abort")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("inconsistent after GC abort: %v", err)
	}
	// The log head must not be bricked by the rolled-back allocation.
	for lba := int64(0); lba < 10; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 3)); err != nil {
			t.Fatalf("write after GC abort: %v", err)
		}
	}
	// And the victim must still be cleanable.
	if err := f.ForceClean(now, victim); err != nil {
		t.Fatalf("victim not cleanable after abort: %v", err)
	}
	now = f.sched.Drain(now)
	if st := f.Stats(); st.GCErases == 0 {
		t.Fatal("retry clean never erased the victim")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteFaultDoesNotBrickLogHead: a failed foreground program must roll
// the allocated page back; without ungetPage every subsequent write fails
// with ErrOutOfOrder.
func TestWriteFaultDoesNotBrickLogHead(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	var err error
	if now, err = f.Write(now, 1, sectorPattern(ss, 1, 1)); err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan(0, faultinject.Rule{
		Kind: faultinject.KindError, Op: nand.OpProgram, Seg: faultinject.AnySeg, AfterN: 1,
	})
	plan.Arm(f.Device())
	if _, err := f.Write(now, 2, sectorPattern(ss, 2, 1)); err == nil {
		t.Fatal("injected program fault not reported")
	}
	plan.Disarm(f.Device())
	for lba := int64(2); lba < 12; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatalf("log head bricked after one failed program: %v", err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestActivationNoteFaultLeaksNoEpoch: if the activate note cannot be
// written, beginActivation must not leave a live epoch behind (a leaked
// epoch pins every snapshot block forever).
func TestActivationNoteFaultLeaksNoEpoch(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	var err error
	for lba := int64(0); lba < 8; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	epochsBefore := len(f.vstore.Epochs())
	counterBefore := f.epochCounter
	plan := faultinject.NewPlan(0, faultinject.Rule{
		Kind: faultinject.KindError, Op: nand.OpProgram, Seg: faultinject.AnySeg, AfterN: 1,
	})
	plan.Arm(f.Device())
	if _, _, err := f.Activate(now, snap.ID, noLimit, false); err == nil {
		t.Fatal("activation with failing note write must error")
	}
	plan.Disarm(f.Device())
	if got := len(f.vstore.Epochs()); got != epochsBefore {
		t.Fatalf("epoch leaked: %d validity epochs, want %d", got, epochsBefore)
	}
	if f.epochCounter != counterBefore {
		t.Fatalf("epoch counter leaked: %d, want %d", f.epochCounter, counterBefore)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The snapshot is still activatable once the fault clears.
	vw, now, err := f.ActivateSync(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vw.Deactivate(now); err != nil {
		t.Fatal(err)
	}
}

// TestCancelRacingBlockMove: cancel an in-flight activation, then force the
// cleaner to move blocks the scan had collected. onBlockMoved after Cancel
// must be a no-op (no panic, no resurrection of the cancelled epoch).
func TestCancelRacingBlockMove(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	var err error
	for lba := int64(0); lba < 30; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	for lba := int64(0); lba < 15; lba++ { // make garbage so a clean has work
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 2)); err != nil {
			t.Fatal(err)
		}
	}
	now = f.sched.Drain(now)

	act, now, err := f.Activate(now, snap.ID, actLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	// Let the scan make partial progress, then cancel mid-flight.
	f.sched.RunUntil(now.Add(6 * sim.Millisecond))
	if act.Ready() {
		t.Skip("activation finished before cancel; tighten actLimit")
	}
	if err := act.Cancel(now); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Cancel = %v", err)
	}
	// Now force a clean that moves snapshot blocks; the cancelled
	// activation must ignore onBlockMoved deliveries.
	victim := -1
	for _, seg := range f.UsedSegments() {
		if seg != f.headSeg {
			victim = seg
			break
		}
	}
	if victim >= 0 {
		if err := f.ForceClean(now, victim); err != nil {
			t.Fatal(err)
		}
	}
	now = f.sched.Drain(now)
	if _, err := act.View(); err == nil {
		t.Fatal("cancelled activation produced a view")
	}
	if f.vstore.Exists(act.epoch) && !f.vstore.Deleted(act.epoch) {
		t.Fatal("cancelled activation's epoch still live")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Later activations of the same snapshot still work.
	vw, now, err := f.ActivateSync(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vw.Deactivate(now); err != nil {
		t.Fatal(err)
	}
}

// TestDeactivateWritableViewAfterSnapshot: deactivating a writable view
// whose epoch was frozen into a snapshot must not delete the snapshotted
// epoch — only the fresh continuation epoch dies.
func TestDeactivateWritableViewAfterSnapshot(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	var err error
	for lba := int64(0); lba < 10; lba++ {
		if now, err = f.Write(now, lba, sectorPattern(ss, lba, 1)); err != nil {
			t.Fatal(err)
		}
	}
	base, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	vw, now, err := f.ActivateSync(now, base.ID, noLimit, true)
	if err != nil {
		t.Fatal(err)
	}
	for lba := int64(0); lba < 5; lba++ {
		if now, err = vw.Write(now, lba, sectorPattern(ss, lba, 7)); err != nil {
			t.Fatal(err)
		}
	}
	// Freeze the view's writes into a snapshot, then write a little more
	// (into the continuation epoch) and deactivate.
	forked, now, err := vw.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	if now, err = vw.Write(now, 6, sectorPattern(ss, 6, 9)); err != nil {
		t.Fatal(err)
	}
	if now, err = vw.Deactivate(now); err != nil {
		t.Fatal(err)
	}
	if !f.vstore.Exists(forked.Epoch) || f.vstore.Deleted(forked.Epoch) {
		t.Fatal("deactivation deleted the snapshotted epoch")
	}
	now = f.sched.Drain(now)
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The forked snapshot reads back the view's frozen writes.
	fv, now, err := f.ActivateSync(now, forked.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ss)
	for lba := int64(0); lba < 5; lba++ {
		if _, err := fv.Read(now, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, 7)) {
			t.Fatalf("forked snapshot LBA %d lost the view's write", lba)
		}
	}
	// The un-snapshotted continuation write (LBA 6) is garbage by design:
	// it must NOT appear in the forked snapshot.
	if _, err := fv.Read(now, 6, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, sectorPattern(ss, 6, 9)) {
		t.Fatal("un-snapshotted continuation write leaked into the snapshot")
	}
	if _, err := fv.Deactivate(now); err != nil {
		t.Fatal(err)
	}
}

// wearTortureConfig is the media-failure acceptance geometry: tortureConfig
// plus a wear-out model that makes erases likely to fail once a segment
// passes a low erase budget, and an armed background scrubber.
func wearTortureConfig() Config {
	cfg := tortureConfig()
	cfg.Nand.WearOutThreshold = 6
	cfg.Nand.WearOutProb = 0.3
	cfg.Nand.WearSeed = 99
	cfg.ScrubInterval = 2 * sim.Millisecond
	cfg.ScrubLimit = ratelimit.WorkSleep{Work: 50 * sim.Microsecond, Sleep: 2 * sim.Millisecond}
	return cfg
}

// wearTransientPlan is the acceptance fault plan: 1% transient read/program
// faults plus a power cut partway through the cycle's programs.
func wearTransientPlan(cycle int) *faultinject.Plan {
	return faultinject.NewPlan(uint64(cycle)*7919+13,
		faultinject.Rule{Name: "transient-read", Kind: faultinject.KindTransient,
			Op: nand.OpRead, Seg: faultinject.AnySeg, Prob: 0.01, Times: 1},
		faultinject.Rule{Name: "transient-program", Kind: faultinject.KindTransient,
			Op: nand.OpProgram, Seg: faultinject.AnySeg, Prob: 0.01, Times: 1},
		faultinject.Rule{Name: "crash", Kind: faultinject.KindCrash,
			Op: nand.OpProgram, Seg: faultinject.AnySeg, AfterN: 120},
	)
}

// TestTortureWearOutMultiCrash is the media-failure acceptance run: wear-out
// erase failures, 1% transient faults, an armed scrubber, and at least three
// crash/recover cycles — with zero invariant violations and zero content
// mismatches. ErrOutOfSpace is tolerated only as graceful degradation (an
// op error), never as corruption.
func TestTortureWearOutMultiCrash(t *testing.T) {
	rep, err := Torture(wearTortureConfig(), TortureOptions{
		Seed:  5,
		Steps: 1500,
		Plan:  wearTransientPlan(0),
		Replan: func(cycle int) *faultinject.Plan {
			if cycle >= 3 {
				return nil // fault-free tail so the final verify is clean
			}
			return wearTransientPlan(cycle)
		},
		ActivationLimit: actLimit,
	})
	if err != nil {
		t.Fatalf("%v (%s)", err, rep)
	}
	if rep.Crashes < 3 || rep.Recoveries < 3 {
		t.Fatalf("wanted >=3 crash/recover cycles, got %d/%d (%s)", rep.Crashes, rep.Recoveries, rep)
	}
	if len(rep.Fired) == 0 {
		t.Fatalf("no faults fired; plan untested (%s)", rep)
	}
	// FinalStats counters reset at every recovery and the tail is fault-free,
	// so retry absorption is asserted through the cumulative fired log: the
	// transient rules hit, yet the run stayed error-free end to end.
	transients := 0
	for _, fi := range rep.Fired {
		if fi.Rule == "transient-read" || fi.Rule == "transient-program" {
			transients++
		}
	}
	if transients == 0 {
		t.Fatalf("transient rules never fired: %v", rep.Fired)
	}
	st := rep.FinalStats
	t.Logf("torture: %s transientsFired=%d mediaFailures=%d retired=%d rescued=%d scrubPasses=%d degraded=%v",
		rep, transients, st.MediaFailures, st.SegmentsRetired, st.RescuedPages, st.ScrubPasses, st.Degraded)
}

// TestTortureWearOutDeterministic: the acceptance plan is fully reproducible
// — same seeds, same report, fired faults and all.
func TestTortureWearOutDeterministic(t *testing.T) {
	run := func() (string, error) {
		rep, err := Torture(wearTortureConfig(), TortureOptions{
			Seed: 17, Steps: 700, Plan: wearTransientPlan(0),
			Replan: func(cycle int) *faultinject.Plan {
				if cycle >= 2 {
					return nil
				}
				return wearTransientPlan(cycle)
			},
		})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s fired=%v stats=%+v", rep, rep.Fired, rep.FinalStats), nil
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("wear-out torture not deterministic:\n%s\n%s", a, b)
	}
}

// TestTortureCrashDuringCheckpoint: periodic checkpoints run underneath the
// randomized snapshot workload, and power dies right after a checkpoint
// chunk lands — several cycles, rotating which stream's chunk is last to
// survive. Every recovery must come up from a complete generation or the
// full scan with all acknowledged state intact.
func TestTortureCrashDuringCheckpoint(t *testing.T) {
	cfg := tortureConfig()
	cfg.CheckpointInterval = 500 * sim.Microsecond
	chunkTypes := []header.Type{header.TypeCkptMap, header.TypeCkptTree, header.TypeCkptValid}
	rep, err := Torture(cfg, TortureOptions{
		Seed:  4242,
		Steps: 1500,
		Plan:  faultinject.CrashAtChunk(header.TypeCkptMap, 1),
		Replan: func(cycle int) *faultinject.Plan {
			if cycle >= 4 {
				return nil // fault-free tail so the final verify is clean
			}
			return faultinject.CrashAtChunk(chunkTypes[cycle%len(chunkTypes)], 1+int64(cycle%2))
		},
		ActivationLimit: actLimit,
	})
	if err != nil {
		t.Fatalf("%v (%s)", err, rep)
	}
	if len(rep.Fired) == 0 {
		t.Fatalf("no checkpoint-chunk crash ever fired; periodic checkpointing never ran (%s)", rep)
	}
	if rep.Crashes < 2 || rep.Recoveries != rep.Crashes {
		t.Fatalf("wanted >=2 clean crash/recover cycles, got %d/%d (%s)", rep.Crashes, rep.Recoveries, rep)
	}
	st := rep.FinalStats
	t.Logf("torture: %s tailBounded=%v fallbacks=%d ckpts=%d ckptErrors=%d",
		rep, st.RecoveryTailBounded, st.RecoveryFallbacks, st.Checkpoints, st.CheckpointErrors)
}

// TestTortureCheckpointChurn: periodic checkpoints under the full
// snapshot-churn mix with no faults at all — generations commit, supersede
// each other, and get stamped stale by cleaning, while every invariant
// check (including checkpoint-pin accounting) stays green.
func TestTortureCheckpointChurn(t *testing.T) {
	cfg := tortureConfig()
	cfg.CheckpointInterval = 1 * sim.Millisecond
	rep, err := Torture(cfg, TortureOptions{
		Seed:          77,
		Steps:         1200,
		SnapshotChurn: true,
	})
	if err != nil {
		t.Fatalf("%v (%s)", err, rep)
	}
	if rep.FinalStats.Checkpoints < 2 {
		t.Fatalf("periodic checkpointing committed %d generations under churn (%s)",
			rep.FinalStats.Checkpoints, rep)
	}
}
