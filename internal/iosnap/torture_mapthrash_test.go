package iosnap

import (
	"fmt"
	"testing"

	"iosnap/internal/faultinject"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// MapThrash torture: the bounded translation-page cache under the full
// randomized storm. The geometry is chosen so the working set spans many
// translation pages while the cache holds almost none of them — every band
// of the mix (writes dirtying pages, trims, snapshot churn moving the log
// head, forced cleans copy-forwarding map pages, reads faulting pages back
// in) lands on a cache that is permanently full.

// mapThrashConfig: 512B sectors (32 map slots per translation page), a
// 2-page cache, and enough segments that map write-back traffic does not
// starve the data path.
func mapThrashConfig() Config {
	nc := testConfig().Nand
	nc.Segments = 64
	cfg := DefaultConfig(nc)
	cfg.GCWindow = 10 * sim.Millisecond
	cfg.BitmapPageBits = 64
	cfg.CoWPageCost = 10 * sim.Microsecond
	cfg.MapCachePages = 2
	return cfg
}

// mapThrashSpace spans ~13 translation pages — more than six times the
// 2-page cache, so faults and evictions never stop.
const mapThrashSpace = 400

func TestTortureMapThrash(t *testing.T) {
	for _, seed := range []uint64{1, 7, 1234} {
		rep, err := Torture(mapThrashConfig(), TortureOptions{
			Seed: seed, Steps: 900, Space: mapThrashSpace, MapThrash: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v (%s)", seed, err, rep)
		}
		if rep.Checks == 0 {
			t.Fatalf("seed %d: no invariant checks ran", seed)
		}
		if rep.OpErrors != 0 {
			t.Fatalf("seed %d: %d op errors without any fault plan (%s)", seed, rep.OpErrors, rep)
		}
		st := rep.FinalStats
		if st.MapCacheMisses == 0 || st.MapCacheEvictions == 0 || st.MapPagesFlushed == 0 {
			t.Fatalf("seed %d: cache never thrashed: %+v", seed, st)
		}
		if st.MapCacheHits == 0 {
			t.Fatalf("seed %d: cache never hit: %+v", seed, st)
		}
		if st.MapMemoryResident >= st.MapMemory {
			t.Fatalf("seed %d: resident %d not below full-map %d", seed, st.MapMemoryResident, st.MapMemory)
		}
	}
}

// mapCrashPlan cuts power on the Nth NAND read. With a 2-page cache over a
// 13-page working set, reads are dominated by translation-page faults, so
// the crash lands mid-thrash — likely with dirty pages in the cache whose
// write-back never happened. Recovery must rebuild the on-flash map anyway.
func mapCrashPlan(after int64) *faultinject.Plan {
	return faultinject.NewPlan(0, faultinject.Rule{
		Kind: faultinject.KindCrash, Op: nand.OpRead, Seg: faultinject.AnySeg, AfterN: after,
	})
}

// TestTortureMapThrashCrashes: power loss mid-thrash, then a transient +
// corrupt-data read plan for the next cycle — injected read faults now hit
// the map-fault path itself, and the retry budget must absorb them without
// the model ever seeing wrong content.
func TestTortureMapThrashCrashes(t *testing.T) {
	rep, err := Torture(mapThrashConfig(), TortureOptions{
		Seed: 9, Steps: 900, Space: mapThrashSpace, MapThrash: true,
		Plan: mapCrashPlan(400),
		Replan: func(cycle int) *faultinject.Plan {
			if cycle == 1 {
				return replChurnPlan(303)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("%v (%s)", err, rep)
	}
	if rep.Crashes < 1 || rep.Recoveries != rep.Crashes {
		t.Fatalf("wanted a clean crash/recover cycle, got %d/%d (%s)", rep.Crashes, rep.Recoveries, rep)
	}
	if len(rep.Fired) == 0 {
		t.Fatalf("no faults fired; storm exercised nothing (%s)", rep)
	}
	// FinalStats counters reset at recovery; the post-crash tail must still
	// be faulting translation pages back in.
	if rep.FinalStats.MapCacheMisses == 0 {
		t.Fatalf("recovered run never faulted a map page (%s)", rep)
	}
}

// TestTortureMapThrashDeterministic: map-page faults, write-backs, and GC
// copy-forwards all add device traffic — none of it may depend on Go map
// order, or seeded fault rules would fire at run-dependent addresses.
func TestTortureMapThrashDeterministic(t *testing.T) {
	run := func() string {
		rep, err := Torture(mapThrashConfig(), TortureOptions{
			Seed: 23, Steps: 600, Space: mapThrashSpace, MapThrash: true,
			Plan: replChurnPlan(11),
		})
		if err != nil {
			t.Fatalf("%v (%s)", err, rep)
		}
		st := rep.FinalStats
		return fmt.Sprintf("%s fired=%v hits=%d misses=%d evict=%d flush=%d",
			rep, rep.Fired, st.MapCacheHits, st.MapCacheMisses,
			st.MapCacheEvictions, st.MapPagesFlushed)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seeds, different runs:\n%s\n%s", a, b)
	}
}

// TestTortureTBClassGeometry is the acceptance run: a 1 TB device (4K
// pages, 1024 pages/segment, 256Ki lazily-materialized segments) whose full
// in-RAM map would dwarf the FTL's RAM budget. The paged map mounts it,
// sustains the MapThrash storm over a working set spanning ~100 translation
// pages with a 4-page cache, and the resident map RAM — asserted via the
// resident-bytes stat — stays at or below 1/8 of the full in-RAM map.
func TestTortureTBClassGeometry(t *testing.T) {
	nc := nand.DefaultConfig()
	nc.SectorSize = 4096
	nc.PagesPerSegment = 1024
	nc.Segments = 1 << 18
	nc.StoreData = true
	cfg := DefaultConfig(nc)
	cfg.SelectiveScan = true // full-log activation scans don't scale to 256Ki segments
	cfg.MapCachePages = 4

	rep, err := Torture(cfg, TortureOptions{
		Seed: 5, Steps: 400, Space: 25600, CheckEvery: 200, MapThrash: true,
	})
	if err != nil {
		t.Fatalf("%v (%s)", err, rep)
	}
	if rep.Checks == 0 {
		t.Fatalf("no invariant checks ran (%s)", rep)
	}
	if rep.OpErrors != 0 {
		t.Fatalf("%d op errors without any fault plan (%s)", rep.OpErrors, rep)
	}
	st := rep.FinalStats
	if st.MapCacheMisses == 0 || st.MapCacheHits == 0 {
		t.Fatalf("paged map idle on TB-class geometry: %+v", st)
	}
	if st.MapMemoryResident*8 > st.MapMemory {
		t.Fatalf("resident map RAM %d B exceeds 1/8 of the full map's %d B",
			st.MapMemoryResident, st.MapMemory)
	}
	t.Logf("TB-class: %s resident=%dB full=%dB hits=%d misses=%d evict=%d flush=%d",
		rep, st.MapMemoryResident, st.MapMemory, st.MapCacheHits,
		st.MapCacheMisses, st.MapCacheEvictions, st.MapPagesFlushed)
}
