package iosnap

import (
	"testing"

	"iosnap/internal/sim"
)

// buildReplicaSource builds the replication benchmark fixture: a 128-segment
// device with 600 written sectors frozen as snapshot s1, then a 10% overwrite
// plus a 10-sector trim frozen as s2. Full replication of s2 ships the whole
// image; incremental replication of s2 against s1 ships only the overwrite
// delta — the wire-bytes and virtual-time gap between the two is the figure
// BENCH_export.json records.
func buildReplicaSource(b *testing.B) (*FTL, SnapshotID, SnapshotID, sim.Time) {
	b.Helper()
	nc := testConfig().Nand
	nc.Segments = 128
	nc.PagesPerSegment = 32
	cfg := DefaultConfig(nc)
	cfg.GCWindow = 10 * sim.Millisecond
	cfg.BitmapPageBits = 64
	cfg.CoWPageCost = 10 * sim.Microsecond
	f, err := New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 600; lba++ {
		f.sched.RunUntil(now)
		d, err := f.Write(now, lba, sectorPattern(ss, lba, 1))
		if err != nil {
			b.Fatalf("fill LBA %d: %v", lba, err)
		}
		now = d
	}
	s1, d, err := f.CreateSnapshot(now)
	if err != nil {
		b.Fatal(err)
	}
	now = d
	for lba := int64(0); lba < 60; lba++ {
		f.sched.RunUntil(now)
		d, err := f.Write(now, lba, sectorPattern(ss, lba, 2))
		if err != nil {
			b.Fatalf("overwrite LBA %d: %v", lba, err)
		}
		now = d
	}
	if d, err := f.Trim(now, 590, 10); err != nil {
		b.Fatal(err)
	} else {
		now = d
	}
	s2, d, err := f.CreateSnapshot(now)
	if err != nil {
		b.Fatal(err)
	}
	return f, s1.ID, s2.ID, d
}

// BenchmarkReplicateFull ships snapshot s2 as a full image to a bare
// destination. The sectors/op, wirebytes/op, and vus/op metrics are
// deterministic virtual quantities (sectors shipped, transfer stream size,
// virtual export+receive time in µs); compare them against
// BenchmarkReplicateIncremental for the incremental advantage.
func BenchmarkReplicateFull(b *testing.B) {
	src, _, s2, now := buildReplicaSource(b)
	var sectors, wire int
	var vtime sim.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, stream, t1, err := src.ExportSync(now, ExportOpts{Snapshot: s2})
		if err != nil {
			b.Fatal(err)
		}
		dst, err := New(src.cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		_, t2, err := ReceiveInto(dst, t1, stream, ReceiveOpts{})
		if err != nil {
			b.Fatal(err)
		}
		sectors = len(m.Writes)
		wire = len(stream)
		vtime = dst.Scheduler().Drain(t2).Sub(now)
	}
	b.ReportMetric(float64(sectors), "sectors/op")
	b.ReportMetric(float64(wire), "wirebytes/op")
	b.ReportMetric(vtime.Microseconds(), "vus/op")
}

// BenchmarkReplicateIncremental seeds the destination with a full image of
// s1 (unmeasured), then ships s2 as a delta against it — the steady-state
// generation-to-generation transfer of a rotation scheme.
func BenchmarkReplicateIncremental(b *testing.B) {
	src, s1, s2, now := buildReplicaSource(b)
	gen1, stream1, now, err := src.ExportSync(now, ExportOpts{Snapshot: s1})
	if err != nil {
		b.Fatal(err)
	}
	var sectors, wire int
	var vtime sim.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err := New(src.cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		_, t0, err := ReceiveInto(dst, now, stream1, ReceiveOpts{})
		if err != nil {
			b.Fatal(err)
		}
		t0 = dst.Scheduler().Drain(t0)
		m, stream, t1, err := src.ExportSync(t0, ExportOpts{
			Snapshot:       s2,
			Base:           s1,
			BaseManifestID: gen1.ID(),
			Have: func(lba, hash uint64) bool {
				e, ok := gen1.Find(lba)
				return ok && e.Hash == hash
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		_, t2, err := ReceiveInto(dst, t1, stream, ReceiveOpts{Base: gen1})
		if err != nil {
			b.Fatal(err)
		}
		if !m.IsDelta() {
			b.Fatal("incremental benchmark shipped a full image")
		}
		sectors = len(m.Writes)
		wire = len(stream)
		vtime = dst.Scheduler().Drain(t2).Sub(t0)
	}
	b.ReportMetric(float64(sectors), "sectors/op")
	b.ReportMetric(float64(wire), "wirebytes/op")
	b.ReportMetric(vtime.Microseconds(), "vus/op")
}
