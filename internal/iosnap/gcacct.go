package iosnap

import (
	"iosnap/internal/bitmap"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// Incremental merged-validity accounting for the snapshot-aware cleaner.
//
// The cleaner's victim choice needs, per used segment, the number of blocks
// valid in ANY live epoch (the merged view, paper §5.4.3). Recomputing that
// merge for every used segment at every scheduling decision costs
// O(segments × live-epochs × pages-per-segment); this layer makes it
// incremental instead:
//
//   - every used segment carries a cached merged bitmap plus a merged-valid
//     counter, updated O(1) on each validity-bit flip (write, trim,
//     copy-forward re-point);
//   - epoch create/delete (and view publish/retire) invalidates lazily by
//     advancing a generation stamp; a stale segment's cache is rebuilt
//     word-at-a-time — one pass per live epoch over just that segment —
//     at most once per epoch-set change;
//   - greedy victim selection reads a score-ordered heap (most merged-
//     invalid first), so a decision with fresh caches costs O(log segments)
//     instead of a device-wide re-merge. Cost-benefit scores depend on a
//     globally drifting age term, so that policy scans the cached counters
//     (O(segments) integer work, still no merging).
//
// To keep view-epoch clears O(1), two bitmaps are cached per segment: the
// full merge ("merged") and the merge over live epochs that do NOT back a
// view ("frozen"). Frozen epochs only change under the cleaner's re-points,
// where the affected epochs are known exactly, so after a view epoch clears
// bit p the new merged bit is frozen(p) OR the other views' bits — a
// constant number of probes.

// segAcct is one used segment's cached cleaning state.
type segAcct struct {
	seg     int
	merged  *bitmap.Bitmap // OR of validity across all live epochs (segment-relative)
	frozen  *bitmap.Bitmap // OR across live epochs not backing a view
	valid   int            // merged.Count()
	gen     uint64         // accounting generation the caches were built against
	stamp   uint64         // log-order insertion stamp (victim tie-break)
	heapIdx int            // position in the greedy heap (-1 when untracked)
}

// gcAcct owns the per-segment caches and the greedy selection heap.
type gcAcct struct {
	f        *FTL
	bySeg    []*segAcct // indexed by segment; nil when not in usedSegs
	heap     []*segAcct // best victim first: fewest merged-valid, oldest stamp
	stamp    uint64
	viewGen  uint64 // advanced when the set of view-backing epochs changes
	freshGen uint64 // generation as of the last complete refreshAll
}

func newGCAcct(f *FTL) *gcAcct {
	return &gcAcct{f: f, bySeg: make([]*segAcct, f.cfg.Nand.Segments)}
}

// curGen combines the validity store's epoch generation (create/delete)
// with the view generation (publish/deactivate): cached merges are exact
// only while both stand still.
func (a *gcAcct) curGen() uint64 { return a.f.vstore.Gen() + a.viewGen }

// bumpViewGen invalidates the frozen/view epoch split (an epoch moved
// between the "backs a view" and "frozen" classes without the store's
// epoch set changing).
func (a *gcAcct) bumpViewGen() { a.viewGen++ }

// track registers a segment that just entered usedSegs. freshEmpty marks a
// just-erased segment entering service as log head: no live epoch holds a
// bit there, so its cache starts exact (all-zero) with no rebuild charge.
// Recovery passes false — caches start stale and the first selection
// decision rebuilds them.
func (a *gcAcct) track(seg int, freshEmpty bool) {
	pps := int64(a.f.cfg.Nand.PagesPerSegment)
	a.stamp++
	e := &segAcct{seg: seg, stamp: a.stamp, heapIdx: -1}
	if freshEmpty {
		e.merged = bitmap.New(pps)
		e.frozen = bitmap.New(pps)
		e.gen = a.curGen()
	}
	a.bySeg[seg] = e
	a.heapPush(e)
}

// untrack drops a segment that left usedSegs (erased back to the pool, or
// retired). Untracking an untracked segment is a no-op so retireSegment can
// call it unconditionally.
func (a *gcAcct) untrack(seg int) {
	e := a.bySeg[seg]
	if e == nil {
		return
	}
	a.heapRemove(e)
	a.bySeg[seg] = nil
}

// entryFor returns the fresh cache entry covering physical page p, or nil
// when the page's segment is untracked or its cache is stale (a stale cache
// ignores flips; the next rebuild recomputes it exactly).
func (a *gcAcct) entryFor(p int64) (*segAcct, int64) {
	pps := int64(a.f.cfg.Nand.PagesPerSegment)
	e := a.bySeg[p/pps]
	if e == nil || e.gen != a.curGen() {
		return nil, 0
	}
	return e, p % pps
}

// onViewSet records that a view epoch set validity bit p (write path, note
// append). A set bit in any live epoch sets the merged bit.
func (a *gcAcct) onViewSet(p int64) {
	e, rel := a.entryFor(p)
	if e == nil {
		return
	}
	if !e.merged.Test(rel) {
		e.merged.Set(rel)
		e.valid++
		a.heapFix(e)
	}
}

// onViewClear records that view epoch ve cleared validity bit p (overwrite
// of a previous translation, or trim). The post-clear merged bit is the
// frozen cache ORed with the remaining views' bits.
func (a *gcAcct) onViewClear(ve bitmap.Epoch, p int64) {
	e, rel := a.entryFor(p)
	if e == nil || !e.merged.Test(rel) {
		return
	}
	if e.frozen.Test(rel) {
		return
	}
	for _, v := range a.f.views {
		if v.epoch != ve && a.f.vstore.Test(v.epoch, p) {
			return
		}
	}
	e.merged.Clear(rel)
	e.valid--
	a.heapFix(e)
}

// onViewSetRun is onViewSet over one segment-contained physical run: the
// merged cache absorbs the range word-at-a-time and the heap fixes once,
// recording exactly the transitions per-bit calls would have.
func (a *gcAcct) onViewSetRun(lo, hi int64) {
	e, rel := a.entryFor(lo)
	if e == nil {
		return
	}
	n := hi - lo
	delta := int(n) - e.merged.CountRange(rel, rel+n)
	if delta > 0 {
		e.merged.SetRange(rel, rel+n)
		e.valid += delta
		a.heapFix(e)
	}
}

// onViewClearRun is onViewClear over one segment-contained run. The
// per-bit holder checks (frozen cache, other live views) cannot be
// batched — they depend on each bit's cross-epoch state — but the heap
// fixes once for the whole run.
func (a *gcAcct) onViewClearRun(ve bitmap.Epoch, lo, hi int64) {
	e, rel := a.entryFor(lo)
	if e == nil {
		return
	}
	delta := 0
	for p, r := lo, rel; p < hi; p, r = p+1, r+1 {
		if !e.merged.Test(r) || e.frozen.Test(r) {
			continue
		}
		held := false
		for _, v := range a.f.views {
			if v.epoch != ve && a.f.vstore.Test(v.epoch, p) {
				held = true
				break
			}
		}
		if held {
			continue
		}
		e.merged.Clear(r)
		delta++
	}
	if delta > 0 {
		e.valid -= delta
		a.heapFix(e)
	}
}

// onBlockMoved records a cleaner copy-forward: every live holder's validity
// bit moved from old to dst. frozenHolder reports whether any holder epoch
// does not back a view, i.e. whether the frozen cache's bit moves too.
func (a *gcAcct) onBlockMoved(old, dst nand.PageAddr, anyHolder, frozenHolder bool) {
	if !anyHolder {
		return
	}
	if e, rel := a.entryFor(int64(old)); e != nil {
		if e.merged.Test(rel) {
			e.merged.Clear(rel)
			e.valid--
			a.heapFix(e)
		}
		e.frozen.Clear(rel)
	}
	if e, rel := a.entryFor(int64(dst)); e != nil {
		if !e.merged.Test(rel) {
			e.merged.Set(rel)
			e.valid++
			a.heapFix(e)
		}
		if frozenHolder {
			e.frozen.Set(rel)
		}
	}
}

// ensureFresh rebuilds seg's caches if they are stale and returns the
// modeled CPU charge: one pass per live epoch over this segment's pages
// (the same per-segment work the old selection paid device-wide, now paid
// at most once per epoch-set change per segment). Fresh caches charge
// nothing.
func (a *gcAcct) ensureFresh(seg int) sim.Duration {
	e := a.bySeg[seg]
	gen := a.curGen()
	if e.gen == gen {
		return 0
	}
	f := a.f
	pps := int64(f.cfg.Nand.PagesPerSegment)
	lo, hi := int64(seg)*pps, int64(seg+1)*pps
	isView := make(map[bitmap.Epoch]bool, len(f.views))
	for _, v := range f.views {
		isView[v.epoch] = true
	}
	var frozenEps, viewEps []bitmap.Epoch
	for _, ep := range f.vstore.Epochs() {
		if f.vstore.Deleted(ep) {
			continue
		}
		if isView[ep] {
			viewEps = append(viewEps, ep)
		} else {
			frozenEps = append(frozenEps, ep)
		}
	}
	e.frozen = f.vstore.MergeRangeInto(frozenEps, lo, hi, e.frozen)
	if e.merged == nil || e.merged.Len() != pps {
		e.merged = e.frozen.Clone()
	} else {
		e.merged.CopyFrom(e.frozen)
	}
	f.vstore.OrRangeInto(viewEps, lo, hi, e.merged)
	e.valid = e.merged.Count()
	e.gen = gen
	a.heapFix(e)
	f.stats.GCCacheRebuilds++
	f.stats.GCCacheRebuildPages += pps
	live := int64(len(frozenEps) + len(viewEps))
	return sim.Duration(live) * sim.Duration(pps) * f.cfg.MergeCPUPerBlock
}

// refreshAll brings every used segment's cache up to the current generation
// before a selection decision. When nothing changed since the last decision
// this is a single counter compare; after an epoch-set change each stale
// segment pays one rebuild. Deleted epochs can only shrink merged validity,
// so stale counters may under-estimate a segment's score — selection must
// therefore run on all-fresh caches, not pop lazily from the heap.
func (a *gcAcct) refreshAll() sim.Duration {
	if a.freshGen == a.curGen() {
		return 0
	}
	var total sim.Duration
	for _, seg := range a.f.usedSegs {
		total += a.ensureFresh(seg)
	}
	a.freshGen = a.curGen()
	return total
}

// mergedClone hands out a private copy of seg's cached merged bitmap (the
// caller must have refreshed it). The clone decouples the cleaner's copy
// plan from accounting updates that land while the clean is paced out.
func (a *gcAcct) mergedClone(seg int) *bitmap.Bitmap {
	return a.bySeg[seg].merged.Clone()
}

// validCount returns seg's cached merged-valid counter (caller refreshes).
func (a *gcAcct) validCount(seg int) int {
	return a.bySeg[seg].valid
}

// bestGreedy returns the heap top excluding the log head and an in-flight
// victim, or nil when no candidate has a merged-invalid block. Parked
// entries are pushed back, so the heap is unchanged on return.
func (a *gcAcct) bestGreedy() *segAcct {
	f := a.f
	pps := f.cfg.Nand.PagesPerSegment
	var parked []*segAcct
	var best *segAcct
	for len(a.heap) > 0 {
		top := a.heap[0]
		// Skip the head, an in-flight victim, and segments with nothing
		// reclaimable once pinned checkpoint chunks count as live.
		if top.seg == f.headSeg || top.seg == f.gcVictim ||
			pps-top.valid-f.pinnedInSeg(top.seg) <= 0 {
			a.heapRemove(top)
			parked = append(parked, top)
			continue
		}
		best = top
		break
	}
	for _, e := range parked {
		a.heapPush(e)
	}
	return best
}

// bestCostBenefit scans the cached counters in log order (the age term
// drifts with every write, so a static heap key cannot order it). Segments
// with no merged-invalid block are never candidates.
func (a *gcAcct) bestCostBenefit() *segAcct {
	f := a.f
	pps := f.cfg.Nand.PagesPerSegment
	var best *segAcct
	bestScore := -1.0
	for _, seg := range f.usedSegs {
		if seg == f.headSeg || seg == f.gcVictim {
			continue
		}
		e := a.bySeg[seg]
		invalid := pps - e.valid - f.pinnedInSeg(seg)
		if invalid <= 0 {
			continue
		}
		score := victimScore(VictimCostBenefit, invalid, e.valid, f.seq, f.segLastSeq[seg])
		if score > bestScore {
			best, bestScore = e, score
		}
	}
	return best
}

// ---- Greedy max-heap: fewest merged-valid first, oldest stamp on ties. ----
// The stamp tie-break reproduces the old linear scan's first-max rule:
// stamps are handed out at every usedSegs append, so stamp order IS log
// order.

func (a *gcAcct) better(x, y *segAcct) bool {
	if x.valid != y.valid {
		return x.valid < y.valid
	}
	return x.stamp < y.stamp
}

func (a *gcAcct) heapSwap(i, j int) {
	a.heap[i], a.heap[j] = a.heap[j], a.heap[i]
	a.heap[i].heapIdx = i
	a.heap[j].heapIdx = j
}

func (a *gcAcct) heapPush(e *segAcct) {
	e.heapIdx = len(a.heap)
	a.heap = append(a.heap, e)
	a.siftUp(e.heapIdx)
}

func (a *gcAcct) heapRemove(e *segAcct) {
	i := e.heapIdx
	last := len(a.heap) - 1
	a.heapSwap(i, last)
	a.heap = a.heap[:last]
	e.heapIdx = -1
	if i < last {
		moved := a.heap[i]
		a.siftUp(moved.heapIdx)
		a.siftDown(moved.heapIdx)
	}
}

// heapFix restores the heap property after e's valid counter changed.
func (a *gcAcct) heapFix(e *segAcct) {
	if e.heapIdx < 0 {
		return
	}
	a.siftUp(e.heapIdx)
	a.siftDown(e.heapIdx)
}

func (a *gcAcct) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !a.better(a.heap[i], a.heap[p]) {
			break
		}
		a.heapSwap(i, p)
		i = p
	}
}

func (a *gcAcct) siftDown(i int) {
	n := len(a.heap)
	for {
		best := i
		if l := 2*i + 1; l < n && a.better(a.heap[l], a.heap[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && a.better(a.heap[r], a.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		a.heapSwap(i, best)
		i = best
	}
}
