package iosnap

import "iosnap/internal/bitmap"

// Per-segment epoch-presence summaries implement the paper's §7 activation
// optimization: "Activations can be further optimized by selectively
// scanning only those segments that have data corresponding to the
// snapshot." The FTL records which epochs have ever written into each
// segment (a tiny superset summary — never decremented until the segment is
// erased), and a selective activation scans only segments whose summary
// intersects the snapshot's lineage.
//
// Safety: the summary is monotone per segment lifetime, so a segment
// omitted from the scan list provably holds no block of any lineage epoch
// at scan-list construction time; blocks moved into such a segment *during*
// the activation are delivered through the cleaner's onBlockMoved hook.

// epochPresence tracks, per segment, the set of epochs with data present.
type epochPresence struct {
	segs []map[bitmap.Epoch]struct{}
}

func newEpochPresence(segments int) *epochPresence {
	return &epochPresence{segs: make([]map[bitmap.Epoch]struct{}, segments)}
}

// add records that epoch e has a block in segment seg.
func (p *epochPresence) add(seg int, e bitmap.Epoch) {
	m := p.segs[seg]
	if m == nil {
		m = make(map[bitmap.Epoch]struct{}, 4)
		p.segs[seg] = m
	}
	m[e] = struct{}{}
}

// clear resets a segment's summary (called on erase).
func (p *epochPresence) clear(seg int) { p.segs[seg] = nil }

// intersects reports whether segment seg may hold blocks of any epoch in
// lineage.
func (p *epochPresence) intersects(seg int, lineage map[bitmap.Epoch]bool) bool {
	for e := range p.segs[seg] {
		if lineage[e] {
			return true
		}
	}
	return false
}

// segmentsFor returns the segments whose summaries intersect lineage, in
// ascending order.
func (p *epochPresence) segmentsFor(lineage map[bitmap.Epoch]bool) []int {
	var out []int
	for seg := range p.segs {
		if p.intersects(seg, lineage) {
			out = append(out, seg)
		}
	}
	return out
}

// count returns how many epochs are summarized for seg (tests/stats).
func (p *epochPresence) count(seg int) int { return len(p.segs[seg]) }
