package iosnap

import (
	"fmt"

	"iosnap/internal/sim"
)

// rescueSegment synchronously copies every block valid in ANY live epoch off
// seg — reusing the snapshot-aware merge and copy-forward, so snapshotted
// data and note pages survive and every epoch's validity bits plus every
// view's translations are re-pointed — then erases and retires it via
// finishClean. It is the targeted form of cleanOnce, used by the scrubber
// (and available to forced cleaning) when a specific segment is dying.
func (f *FTL) rescueSegment(now sim.Time, seg int) (sim.Time, error) {
	if seg == f.headSeg {
		return now, fmt.Errorf("iosnap: cannot rescue the log head segment %d", seg)
	}
	if seg == f.gcVictim {
		return now, fmt.Errorf("iosnap: segment %d is mid-clean", seg)
	}
	if !f.segInUse(seg) {
		return now, fmt.Errorf("iosnap: segment %d not in use", seg)
	}
	cost := f.acct.ensureFresh(seg)
	f.stats.GCMergeTime += cost
	now = now.Add(cost)
	merged := f.acct.mergedClone(seg)
	f.orPinsInto(seg, merged)
	order := f.copyOrder(seg, merged)
	cursor := 0
	for cursor < len(order) {
		var err error
		cursor, now, err = f.copyForward(now, seg, merged, order, cursor, len(order))
		if err != nil {
			return now, fmt.Errorf("iosnap: rescuing segment %d: %w", seg, err)
		}
	}
	return f.finishClean(now, seg)
}
