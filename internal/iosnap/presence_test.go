package iosnap

import (
	"bytes"
	"testing"

	"iosnap/internal/bitmap"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
)

func TestEpochPresenceBasics(t *testing.T) {
	p := newEpochPresence(4)
	p.add(0, 1)
	p.add(0, 2)
	p.add(3, 2)
	if p.count(0) != 2 || p.count(1) != 0 || p.count(3) != 1 {
		t.Fatalf("counts wrong: %d %d %d", p.count(0), p.count(1), p.count(3))
	}
	lin := map[bitmap.Epoch]bool{2: true}
	if !p.intersects(0, lin) || !p.intersects(3, lin) || p.intersects(1, lin) {
		t.Fatal("intersects wrong")
	}
	segs := p.segmentsFor(lin)
	if len(segs) != 2 || segs[0] != 0 || segs[1] != 3 {
		t.Fatalf("segmentsFor = %v", segs)
	}
	p.clear(0)
	if p.count(0) != 0 {
		t.Fatal("clear failed")
	}
}

// TestSelectiveScanMatchesFullScan is the correctness property: with
// SelectiveScan enabled, every activation must produce exactly the same
// view as a full-log scan, under churn, cleaning, and crashes.
func TestSelectiveScanMatchesFullScan(t *testing.T) {
	for _, seed := range []uint64{5, 17} {
		nc := testConfig().Nand
		nc.Segments = 40 // room for three pinned snapshots plus churn
		cfg := DefaultConfig(nc)
		cfg.GCWindow = 10 * sim.Millisecond
		cfg.BitmapPageBits = 64
		cfg.SelectiveScan = true
		f, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		ss := f.SectorSize()
		rng := sim.NewRNG(seed)
		now := sim.Time(0)
		model := make(map[int64]byte)
		snapModels := make(map[SnapshotID]map[int64]byte)
		var snaps []SnapshotID
		for step := 0; step < 700; step++ {
			f.sched.RunUntil(now)
			if step%180 == 120 && len(snaps) < 3 {
				snap, d, err := f.CreateSnapshot(now)
				if err != nil {
					t.Fatal(err)
				}
				now = d
				frozen := make(map[int64]byte, len(model))
				for k, v := range model {
					frozen[k] = v
				}
				snapModels[snap.ID] = frozen
				snaps = append(snaps, snap.ID)
				continue
			}
			lba := rng.Int63n(90)
			v := byte(step%250 + 1)
			d, err := f.Write(now, lba, sectorPattern(ss, lba, v))
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			model[lba] = v
			now = d
		}
		now = f.sched.Drain(now)
		if f.Stats().GCRuns == 0 {
			t.Fatalf("seed %d: no cleaning; selective-scan test weak", seed)
		}
		buf := make([]byte, ss)
		for _, id := range snaps {
			view, d, err := f.ActivateSync(now, id, noLimit, false)
			if err != nil {
				t.Fatalf("seed %d activating %d: %v", seed, id, err)
			}
			now = d
			frozen := snapModels[id]
			if view.MappedSectors() != len(frozen) {
				t.Fatalf("seed %d snap %d: selective scan mapped %d, want %d",
					seed, id, view.MappedSectors(), len(frozen))
			}
			for lba, v := range frozen {
				if _, err := view.Read(now, lba, buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf, sectorPattern(ss, lba, v)) {
					t.Fatalf("seed %d snap %d LBA %d wrong under selective scan", seed, id, lba)
				}
			}
			if _, err := view.Deactivate(now); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSelectiveScanIsFaster checks the optimization actually pays: on a
// large log where the snapshot's data is confined to a few segments, the
// selective activation must scan far fewer segments and finish sooner.
func TestSelectiveScanIsFaster(t *testing.T) {
	run := func(selective bool) sim.Duration {
		nc := testConfig().Nand
		nc.Segments = 64
		cfg := DefaultConfig(nc)
		cfg.BitmapPageBits = 64
		cfg.SelectiveScan = selective
		f, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		ss := f.SectorSize()
		now := sim.Time(0)
		// A tiny early snapshot...
		for lba := int64(0); lba < 10; lba++ {
			now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
		}
		snap, now, err := f.CreateSnapshot(now)
		if err != nil {
			t.Fatal(err)
		}
		// ...followed by a lot of unrelated data filling many segments.
		for lba := int64(100); lba < 700; lba++ {
			f.sched.RunUntil(now)
			d, err := f.Write(now, lba, sectorPattern(ss, lba, 2))
			if err != nil {
				t.Fatal(err)
			}
			now = d
		}
		start := now
		view, done, err := f.ActivateSync(now, snap.ID, noLimit, false)
		if err != nil {
			t.Fatal(err)
		}
		if view.MappedSectors() != 10 {
			t.Fatalf("selective=%v mapped %d, want 10", selective, view.MappedSectors())
		}
		return done.Sub(start)
	}
	full := run(false)
	sel := run(true)
	if sel >= full/4 {
		t.Fatalf("selective scan (%v) not much faster than full scan (%v)", sel, full)
	}
}

// TestSelectiveScanWithConcurrentGC stresses the moved-block hook under
// the reduced scan list.
func TestSelectiveScanWithConcurrentGC(t *testing.T) {
	cfg := testConfig()
	cfg.SelectiveScan = true
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := f.SectorSize()
	rng := sim.NewRNG(77)
	now := sim.Time(0)
	model := make(map[int64]byte)
	for i := 0; i < 120; i++ {
		f.sched.RunUntil(now)
		lba := rng.Int63n(80)
		v := byte(i + 1)
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, v))
		model[lba] = v
	}
	snap, now, _ := f.CreateSnapshot(now)
	frozen := make(map[int64]byte, len(model))
	for k, v := range model {
		frozen[k] = v
	}
	act, now, err := f.Activate(now, snap.ID, throttled(), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		f.sched.RunUntil(now)
		lba := rng.Int63n(80)
		d, err := f.Write(now, lba, sectorPattern(ss, lba, byte(200+i%50)))
		if err != nil {
			t.Fatal(err)
		}
		now = d
	}
	end := f.sched.Drain(now)
	view, err := act.View()
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("no GC; test vacuous")
	}
	buf := make([]byte, ss)
	for lba, v := range frozen {
		if _, err := view.Read(end, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, v)) {
			t.Fatalf("LBA %d wrong under selective scan + concurrent GC", lba)
		}
	}
}

// throttled returns a small activation budget used by the concurrency test.
func throttled() ratelimit.WorkSleep {
	return ratelimit.WorkSleep{Work: 5 * sim.Microsecond, Sleep: 300 * sim.Microsecond}
}
