package iosnap

import (
	"bytes"
	"errors"
	"testing"

	"iosnap/internal/sim"
)

func TestExportImportRoundTrip(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	model := make(map[int64]byte)
	rng := sim.NewRNG(55)
	for i := 0; i < 60; i++ {
		lba := rng.Int63n(100)
		v := byte(i + 1)
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, v))
		model[lba] = v
	}
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	// Diverge the active state so the export provably captures the frozen
	// contents, not the current ones.
	for lba := int64(0); lba < 100; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 200))
	}
	view, now, err := f.ActivateSync(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	now, err = view.Export(now, &stream)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}

	// Destage to a fresh device (the "archival" tier).
	dst := newTestFTL(t)
	now2, err := ImportInto(dst, 0, bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatalf("ImportInto: %v", err)
	}
	buf := make([]byte, ss)
	for lba, v := range model {
		if _, err := dst.Read(now2, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, v)) {
			t.Fatalf("destaged LBA %d wrong", lba)
		}
	}
	// Sectors never in the snapshot must stay unwritten on the destination.
	if dst.MappedSectors() != len(model) {
		t.Fatalf("destination mapped %d, want %d", dst.MappedSectors(), len(model))
	}
	_ = now
}

func TestExportClosedViewFails(t *testing.T) {
	f := newTestFTL(t)
	now, _ := f.Write(0, 0, sectorPattern(f.SectorSize(), 0, 1))
	snap, now, _ := f.CreateSnapshot(now)
	view, now, err := f.ActivateSync(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	now, _ = view.Deactivate(now)
	var sink bytes.Buffer
	if _, err := view.Export(now, &sink); !errors.Is(err, ErrViewClosed) {
		t.Fatalf("export of deactivated view: %v", err)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	dst := newTestFTL(t)
	if _, err := ImportInto(dst, 0, bytes.NewReader([]byte("junk"))); !errors.Is(err, ErrBadExport) {
		t.Fatalf("garbage import: %v", err)
	}
	if _, err := ImportInto(dst, 0, bytes.NewReader(append(exportMagic[:], 1, 2))); !errors.Is(err, ErrBadExport) {
		t.Fatalf("truncated import: %v", err)
	}
}

func TestImportSectorSizeMismatch(t *testing.T) {
	f := newTestFTL(t)
	now, _ := f.Write(0, 0, sectorPattern(f.SectorSize(), 0, 1))
	snap, now, _ := f.CreateSnapshot(now)
	view, now, err := f.ActivateSync(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	if _, err := view.Export(now, &stream); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Nand.SectorSize = 256
	cfg.Nand.PagesPerSegment = 32
	dst, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ImportInto(dst, 0, bytes.NewReader(stream.Bytes())); err == nil {
		t.Fatal("sector-size mismatch accepted")
	}
}

func TestExportFingerprintModeFailsLoudly(t *testing.T) {
	// A fingerprint-mode device retains no payloads; destaging one used to
	// silently stream zeros. It must refuse instead.
	cfg := testConfig()
	cfg.Nand.StoreData = false
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	now, err := f.Write(0, 3, sectorPattern(f.SectorSize(), 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	view, now, err := f.ActivateSync(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	if _, err := view.Export(now, &sink); !errors.Is(err, ErrBadExport) {
		t.Fatalf("fingerprint-mode export: got %v, want ErrBadExport", err)
	}
	if sink.Len() != 0 {
		t.Fatalf("refused export still wrote %d bytes", sink.Len())
	}
}

func TestImportRejectsDamagedStreams(t *testing.T) {
	// Build one good stream, then damage it per case. Every rejection must
	// be ErrBadExport-class so callers can distinguish stream damage from
	// device errors.
	f := newTestFTL(t)
	ss := f.SectorSize()
	now, err := f.Write(0, 5, sectorPattern(ss, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	now, err = f.Write(now, 9, sectorPattern(ss, 9, 1))
	if err != nil {
		t.Fatal(err)
	}
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	view, now, err := f.ActivateSync(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	if _, err := view.Export(now, &stream); err != nil {
		t.Fatal(err)
	}
	good := stream.Bytes()
	recOff := len(exportMagic) + 20 // first (lba, payload) record

	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"magic only", func(b []byte) []byte { return b[:len(exportMagic)] }},
		{"truncated header", func(b []byte) []byte { return b[:len(exportMagic)+7] }},
		{"truncated mid-record", func(b []byte) []byte { return b[:recOff+3] }},
		{"truncated mid-payload", func(b []byte) []byte { return b[:recOff+8+ss/2] }},
		{"zero sector size", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(exportMagic)] = 0
			c[len(exportMagic)+1] = 0
			c[len(exportMagic)+2] = 0
			c[len(exportMagic)+3] = 0
			return c
		}},
		{"lba beyond destination", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			for i := 0; i < 8; i++ {
				c[recOff+i] = 0xFF
			}
			return c
		}},
	}
	for _, tc := range cases {
		dst := newTestFTL(t)
		if _, err := ImportInto(dst, 0, bytes.NewReader(tc.mangle(good))); !errors.Is(err, ErrBadExport) {
			t.Errorf("%s: got %v, want ErrBadExport", tc.name, err)
		}
	}

	// Sector-size mismatch is ErrBadExport-class too.
	cfg := testConfig()
	cfg.Nand.SectorSize = 256
	cfg.Nand.PagesPerSegment = 32
	dst, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ImportInto(dst, 0, bytes.NewReader(good)); !errors.Is(err, ErrBadExport) {
		t.Errorf("sector-size mismatch: got %v, want ErrBadExport", err)
	}
}

func TestDestageThenDeleteFreesFlash(t *testing.T) {
	// The destage workflow: export a snapshot, delete it, verify the
	// cleaner can then reclaim its blocks (the device keeps working under
	// churn that would otherwise exhaust it).
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 100; lba++ {
		f.sched.RunUntil(now)
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
	}
	snap, now, _ := f.CreateSnapshot(now)
	for lba := int64(0); lba < 100; lba++ {
		f.sched.RunUntil(now)
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 2))
	}
	view, now, err := f.ActivateSync(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	var archive bytes.Buffer
	if now, err = view.Export(now, &archive); err != nil {
		t.Fatal(err)
	}
	if now, err = view.Deactivate(now); err != nil {
		t.Fatal(err)
	}
	if now, err = f.DeleteSnapshot(now, snap.ID); err != nil {
		t.Fatal(err)
	}
	// Churn that needs the reclaimed space.
	rng := sim.NewRNG(9)
	for i := 0; i < 300; i++ {
		f.sched.RunUntil(now)
		lba := rng.Int63n(100)
		d, err := f.Write(now, lba, sectorPattern(ss, lba, byte(i)))
		if err != nil {
			t.Fatalf("churn after destage: %v", err)
		}
		now = d
	}
	// And the archive still restores generation 1.
	dst := newTestFTL(t)
	now2, err := ImportInto(dst, 0, bytes.NewReader(archive.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ss)
	if _, err := dst.Read(now2, 42, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, sectorPattern(ss, 42, 1)) {
		t.Fatal("archive lost the snapshot contents")
	}
}
