package iosnap

import (
	"fmt"
	"sort"

	"iosnap/internal/bitmap"
	"iosnap/internal/ckpt"
	"iosnap/internal/header"
	"iosnap/internal/mapcache"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/retry"
	"iosnap/internal/sim"
)

// Snapshot-aware checkpointing. A checkpoint captures, at one serialization
// instant, everything ioSnap's full-scan recovery would otherwise rebuild
// from the whole log:
//
//   - the active forward map (TypeCkptMap chunks);
//   - the snapshot tree, the epoch counter, and a segment table with each
//     used segment's erase count, programmed-page count, newest sequence
//     number, and epoch-presence summary (TypeCkptTree chunks);
//   - every epoch's validity delta — its CoW-owned bitmap pages plus its
//     parent link and deleted mark (TypeCkptValid chunks).
//
// Each of the three streams is framed and checksummed by the shared codec
// (internal/ckpt) and split into sector-sized chunks; a chunk's OOB header
// carries its stream type, its index (LBA field), and the stream's total
// chunk count (Epoch field). The device anchor — updated atomically only at
// commit, like a checkpoint pack — names every chunk of the committed
// generation, and those pages are pinned so the cleaner copies them forward
// instead of reclaiming them. ckptID = ckptSeq = f.seq at serialization:
// recovery bulk-loads the checkpoint and replays only records newer than
// the cut-off, falling back to the full scan whenever anything about the
// generation cannot be proven intact.
//
// Epochs that provably die at crash recovery — the epoch of an in-flight
// activation, or a view epoch still on its activation note — are serialized
// as already-deleted ("dead-epoch normalization"), so a tail-bounded
// recovery reproduces the same epoch liveness the full scan derives from
// the note history.

// Section kinds inside the three ioSnap checkpoint streams.
const (
	ckptSecMap   = 1 // active map: count, then count × (lba, addr)
	ckptSecTree  = 2 // counter, active epoch, snapshots, segment table
	ckptSecValid = 3 // per-epoch parent/deleted/owned validity pages
	ckptSecGTD   = 4 // bounded-paged map: the global translation directory
)

// ckptSnapRec is one serialized snapshot-tree node.
type ckptSnapRec struct {
	id       SnapshotID
	epoch    bitmap.Epoch
	parentID SnapshotID // 0 = no parent
	deleted  bool
	noteAddr nand.PageAddr
}

// ckptSegRec is one used segment's identity at serialization time.
type ckptSegRec struct {
	seg      int
	erases   int
	prog     int
	maxSeq   uint64
	presence []bitmap.Epoch // epoch-presence summary, ascending
}

// ckptEpochRec is one epoch's serialized validity delta.
type ckptEpochRec struct {
	epoch   bitmap.Epoch
	parent  bitmap.Epoch // bitmap.NoParent for the root
	deleted bool         // normalized: includes epochs that die at recovery
	pages   []bitmap.OwnedPage
}

// ckptTreeState is the decoded tree stream.
type ckptTreeState struct {
	counter bitmap.Epoch
	active  bitmap.Epoch
	snaps   []ckptSnapRec
	table   []ckptSegRec
}

// ckptChunkJob is one chunk awaiting its program, with the stream identity
// its OOB header must carry.
type ckptChunkJob struct {
	typ   header.Type
	data  []byte
	idx   int
	total int
}

// ckptEpochDies reports whether epoch e, live right now, would be dead
// after a crash: full-scan recovery deletes the epoch of every activation
// that never froze into a snapshot. Serializing such epochs as deleted
// keeps tail-bounded recovery byte-compatible with the scan.
func (f *FTL) ckptEpochDies(e bitmap.Epoch) bool {
	for _, v := range f.views {
		if v != f.active && v.epoch == e && v.fromActivation {
			return true
		}
	}
	for _, a := range f.activations {
		if a.epoch == e {
			return true
		}
	}
	return false
}

// serializeCheckpoint captures the three streams at one instant and returns
// the checkpoint identity plus every chunk to program.
func (f *FTL) serializeCheckpoint() (uint64, []ckptChunkJob, error) {
	ckptID := f.seq

	// Stream 1: the active forward map. Tree and cache-unbounded maps
	// serialize the full mapping list (byte-identical between the two —
	// the unbounded equivalence contract). A bounded paged map serializes
	// only the GTD: every dirty translation page was flushed before this
	// point (writeCheckpoint / ckptTask call flushAllMapPages first), so
	// the directory's flash copies are current.
	var mw ckpt.Writer
	mapKind := uint8(ckptSecMap)
	if c := f.pagedActive(); c != nil && c.Bounded() {
		if dirty := c.DirtyPages(); len(dirty) != 0 {
			return 0, nil, fmt.Errorf("iosnap: checkpoint with %d unflushed translation pages", len(dirty))
		}
		mapKind = ckptSecGTD
		ents := c.GTDEntries()
		mw.U32(uint32(c.SlotsPerPage()))
		mw.U32(uint32(len(ents)))
		for _, ent := range ents {
			mw.U64(ent.Idx)
			mw.U64(ent.Addr)
			mw.U32(uint32(ent.Live))
		}
	} else {
		mw.U64(uint64(f.active.fmap.Len()))
		f.active.fmap.All(func(lba, addr uint64) bool {
			mw.U64(lba)
			mw.U64(addr)
			return true
		})
	}

	// Stream 2: epoch counter, active epoch, snapshot tree, segment table.
	var tw ckpt.Writer
	tw.U64(uint64(f.epochCounter))
	tw.U64(uint64(f.active.epoch))
	ids := f.tree.IDs()
	tw.U32(uint32(len(ids)))
	for _, id := range ids {
		s, _ := f.tree.Lookup(id)
		tw.U64(uint64(s.ID))
		tw.U64(uint64(s.Epoch))
		if s.Parent != nil {
			tw.U64(uint64(s.Parent.ID))
		} else {
			tw.U64(0)
		}
		tw.Bool(s.Deleted)
		tw.U64(uint64(s.noteAddr))
	}
	tw.U32(uint32(len(f.usedSegs)))
	for _, s := range f.usedSegs {
		tw.U32(uint32(s))
		tw.U32(uint32(f.dev.EraseCount(s)))
		tw.U32(uint32(f.dev.NextFreeInSegment(s)))
		tw.U64(f.segLastSeq[s])
		eps := make([]bitmap.Epoch, 0, f.presence.count(s))
		for e := range f.presence.segs[s] {
			eps = append(eps, e)
		}
		sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
		tw.U32(uint32(len(eps)))
		for _, e := range eps {
			tw.U64(uint64(e))
		}
	}

	// Stream 3: per-epoch validity deltas, ascending (parents first: epoch
	// numbers grow downward through the inheritance graph).
	var vw ckpt.Writer
	vw.U64(uint64(f.vstore.BitsPerPage()))
	epochs := f.vstore.Epochs()
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	vw.U32(uint32(len(epochs)))
	for _, e := range epochs {
		vw.U64(uint64(e))
		if p, ok := f.epochParent[e]; ok {
			vw.U64(uint64(p))
		} else {
			vw.U64(uint64(bitmap.NoParent))
		}
		vw.Bool(f.vstore.Deleted(e) || f.ckptEpochDies(e))
		pages := f.vstore.ExportEpoch(e)
		vw.U32(uint32(len(pages)))
		for _, pg := range pages {
			vw.U64(uint64(pg.PageIdx))
			for _, w := range pg.Words {
				vw.U64(w)
			}
		}
	}

	var jobs []ckptChunkJob
	for _, st := range []struct {
		typ  header.Type
		kind uint8
		data []byte
	}{
		{header.TypeCkptMap, mapKind, mw.B},
		{header.TypeCkptTree, ckptSecTree, tw.B},
		{header.TypeCkptValid, ckptSecValid, vw.B},
	} {
		stream := ckpt.Encode(ckptID, ckptID, []ckpt.Section{{Kind: st.kind, Data: st.data}})
		chunks, err := ckpt.Split(ckptID, stream, f.cfg.Nand.SectorSize)
		if err != nil {
			return 0, nil, fmt.Errorf("iosnap: chunking %v stream: %w", st.typ, err)
		}
		for i, c := range chunks {
			jobs = append(jobs, ckptChunkJob{typ: st.typ, data: c, idx: i, total: len(chunks)})
		}
	}
	return ckptID, jobs, nil
}

// programCkptChunk appends one chunk at the log head and pins it against
// the cleaner. Chunk pages are never validity-marked — they are consumed at
// recovery, not translated — so the pin is their only protection. A failed
// program rolls back the allocation and seals the head on permanent media
// failure, like every other program path.
func (f *FTL) programCkptChunk(now sim.Time, job ckptChunkJob) (nand.PageAddr, sim.Time, error) {
	addr, now, err := f.allocPage(now)
	if err != nil {
		return 0, now, fmt.Errorf("iosnap: allocating checkpoint page: %w", err)
	}
	f.seq++
	h := header.Header{Type: job.typ, LBA: uint64(job.idx), Epoch: uint64(job.total), Seq: f.seq}
	done, err := f.devProgramPage(now, addr, job.data, h.Marshal())
	if err != nil {
		f.ungetPage(addr)
		if retry.MediaFailure(err) {
			f.sealHead()
		}
		return 0, now, fmt.Errorf("iosnap: writing %v chunk %d: %w", job.typ, job.idx, err)
	}
	f.segLastSeq[f.dev.SegmentOf(addr)] = f.seq
	f.ckptPins[addr] = true
	return addr, done, nil
}

// commitCheckpoint atomically publishes a fully-programmed generation: the
// device anchor flips and the superseded generation's pins drop.
func (f *FTL) commitCheckpoint(now sim.Time, ckptID uint64, addrs []nand.PageAddr) {
	for _, a := range f.anchorAddrs {
		delete(f.ckptPins, a)
	}
	f.anchorID = ckptID
	f.anchorAddrs = addrs
	f.dev.SetAnchor(&nand.Anchor{ID: ckptID, Addrs: addrs})
	f.lastCkpt = now
	f.stats.Checkpoints++
	f.stats.CheckpointChunks += int64(len(addrs))
}

// movePin follows a copy-forwarded chunk: the pin moves with the page and
// whichever list names it — the committed anchor or the in-flight chunk
// list — is updated in place. A moved anchor chunk republishes the device
// anchor so recovery still finds every chunk.
func (f *FTL) movePin(old, dst nand.PageAddr) {
	delete(f.ckptPins, old)
	f.ckptPins[dst] = true
	for i, a := range f.anchorAddrs {
		if a == old {
			f.anchorAddrs[i] = dst
			f.dev.SetAnchor(&nand.Anchor{ID: f.anchorID, Addrs: f.anchorAddrs})
			return
		}
	}
	for i, a := range f.ckptInflight {
		if a == old {
			f.ckptInflight[i] = dst
			return
		}
	}
}

// abortCheckpoint unpins a partial generation; the previous anchor stays.
func (f *FTL) abortCheckpoint(addrs []nand.PageAddr, err error) {
	for _, a := range addrs {
		delete(f.ckptPins, a)
	}
	f.stats.CheckpointErrors++
	f.stats.CheckpointLastErr = err.Error()
}

// writeCheckpoint synchronously serializes and programs a checkpoint (the
// Close path).
func (f *FTL) writeCheckpoint(now sim.Time) (sim.Time, error) {
	// ckptActive guards the whole sequence: the map flushes below advance
	// the log head, which must not arm a second (background) checkpoint.
	f.ckptActive = true
	defer func() { f.ckptActive = false }()
	if c := f.pagedActive(); c != nil && c.Bounded() {
		var err error
		if now, err = f.flushAllMapPages(now, c); err != nil {
			f.stats.CheckpointErrors++
			f.stats.CheckpointLastErr = err.Error()
			return now, err
		}
	}
	ckptID, jobs, err := f.serializeCheckpoint()
	if err != nil {
		f.stats.CheckpointErrors++
		f.stats.CheckpointLastErr = err.Error()
		return now, err
	}
	var addrs []nand.PageAddr
	for _, job := range jobs {
		var addr nand.PageAddr
		addr, now, err = f.programCkptChunk(now, job)
		if err != nil {
			f.abortCheckpoint(addrs, err)
			return now, err
		}
		addrs = append(addrs, addr)
	}
	f.commitCheckpoint(now, ckptID, addrs)
	return now, nil
}

// maybeScheduleCheckpoint arms the periodic background checkpoint from the
// head-advance path, the same way the cleaner and scrubber are armed.
func (f *FTL) maybeScheduleCheckpoint(now sim.Time) {
	if f.ckptActive || f.closed || f.cfg.CheckpointInterval <= 0 || !f.cfg.Nand.StoreData {
		return
	}
	if now.Sub(f.lastCkpt) < f.cfg.CheckpointInterval {
		return
	}
	f.startCheckpoint(now)
}

// StartCheckpoint forces a background checkpoint now (tests and tools). It
// reports whether a task was scheduled.
func (f *FTL) StartCheckpoint(now sim.Time) bool {
	if f.ckptActive || f.closed || !f.cfg.Nand.StoreData {
		return false
	}
	return f.startCheckpoint(now)
}

// CheckpointActive reports whether a checkpoint is being written.
func (f *FTL) CheckpointActive() bool { return f.ckptActive }

func (f *FTL) startCheckpoint(now sim.Time) bool {
	if c := f.pagedActive(); c != nil && c.Bounded() {
		// A bounded paged map must flush every dirty translation page before
		// serializing, and flushing programs through the log head — which
		// cannot happen here: startCheckpoint fires from the head-advance
		// path, possibly mid-program under SequentialProg. Defer both the
		// flush and the serialization to the task's first run.
		f.ckptActive = true
		f.ckptInflight = nil
		f.sched.Schedule(now, &ckptTask{
			f:       f,
			pending: true,
			budget:  ratelimit.NewBudget(f.cfg.CheckpointLimit),
		})
		return true
	}
	ckptID, jobs, err := f.serializeCheckpoint()
	if err != nil {
		f.stats.CheckpointErrors++
		f.stats.CheckpointLastErr = err.Error()
		return false
	}
	f.ckptActive = true
	f.ckptInflight = nil
	f.sched.Schedule(now, &ckptTask{
		f:      f,
		id:     ckptID,
		jobs:   jobs,
		budget: ratelimit.NewBudget(f.cfg.CheckpointLimit),
	})
	return true
}

// ckptTask programs a serialized generation's chunks under the WorkSleep
// budget. The streams were captured at scheduling time, so foreground
// writes that land between quanta carry seq > ckptSeq and are replayed on
// top at recovery — the checkpoint stays consistent without stalling
// writers.
type ckptTask struct {
	f       *FTL
	id      uint64
	jobs    []ckptChunkJob
	next    int
	pending bool // bounded-paged mode: flush + serialize on first run
	budget  *ratelimit.Budget
}

// Name implements sim.Task.
func (t *ckptTask) Name() string { return fmt.Sprintf("iosnap-checkpoint(%d)", t.id) }

// Run implements sim.Task: one budgeted batch of chunk programs.
func (t *ckptTask) Run(now sim.Time) (sim.Time, bool) {
	f := t.f
	if f.closed {
		// Close wrote its own synchronous checkpoint, superseding this one.
		for _, a := range f.ckptInflight {
			delete(f.ckptPins, a)
		}
		f.ckptInflight = nil
		f.ckptActive = false
		return 0, true
	}
	if t.pending {
		var err error
		if c := f.pagedActive(); c != nil && c.Bounded() {
			now, err = f.flushAllMapPages(now, c)
		}
		if err == nil {
			t.id, t.jobs, err = f.serializeCheckpoint()
		}
		if err != nil {
			f.stats.CheckpointErrors++
			f.stats.CheckpointLastErr = err.Error()
			f.ckptActive = false
			return 0, true
		}
		t.pending = false
	}
	start := now
	for programmed := 0; t.next < len(t.jobs) && programmed < f.cfg.GCChunk; programmed++ {
		addr, done, err := f.programCkptChunk(now, t.jobs[t.next])
		if err != nil {
			f.abortCheckpoint(f.ckptInflight, err)
			f.ckptInflight = nil
			f.ckptActive = false
			return 0, true
		}
		f.ckptInflight = append(f.ckptInflight, addr)
		t.next++
		now = done
	}
	if t.next < len(t.jobs) {
		if sleep, exhausted := t.budget.Charge(now.Sub(start)); exhausted {
			return now.Add(sleep), false
		}
		return now, false
	}
	f.commitCheckpoint(now, t.id, f.ckptInflight)
	f.ckptInflight = nil
	f.ckptActive = false
	return 0, true
}

// orPinsInto overlays the victim's pinned pages — checkpoint chunks and
// live GTD-referenced translation pages — onto its merged validity clone
// so the cleaner's copy order visits them: both are valid in no epoch,
// but both must survive cleaning.
func (f *FTL) orPinsInto(victim int, merged *bitmap.Bitmap) {
	for a := range f.ckptPins {
		if f.dev.SegmentOf(a) == victim {
			merged.Set(int64(f.dev.PageIndexOf(a)))
		}
	}
	for a := range f.mapPins {
		if f.dev.SegmentOf(a) == victim {
			merged.Set(int64(f.dev.PageIndexOf(a)))
		}
	}
}

// pinnedInSeg counts pinned pages (checkpoint chunks and translation
// pages) in seg. Victim scoring must treat them as live: a segment full
// of pinned pages has zero valid bits yet cleaning it reclaims nothing —
// picking it anyway would let the emergency-clean loop churn forever
// moving pins from segment to segment.
func (f *FTL) pinnedInSeg(seg int) int {
	n := 0
	for a := range f.ckptPins {
		if f.dev.SegmentOf(a) == seg {
			n++
		}
	}
	for a := range f.mapPins {
		if f.dev.SegmentOf(a) == seg {
			n++
		}
	}
	return n
}

// ---- Decode helpers (recovery side). ----

// decodeCkptMapStream decodes the map stream in either layout: the full
// mapping list (tree / cache-unbounded checkpoints, ckptSecMap) or the
// global translation directory (bounded-paged checkpoints, ckptSecGTD).
// Exactly one of entries / gtd is non-nil on success.
func decodeCkptMapStream(secs []ckpt.Section) (entries [][2]uint64, gtd []mapcache.GTDEnt, slotsPer int, err error) {
	for _, s := range secs {
		switch s.Kind {
		case ckptSecMap:
			r := ckpt.Reader{B: s.Data}
			n := r.U64()
			entries = make([][2]uint64, 0, n)
			for i := uint64(0); i < n; i++ {
				lba, addr := r.U64(), r.U64()
				entries = append(entries, [2]uint64{lba, addr})
			}
			if r.Err() != nil {
				return nil, nil, 0, fmt.Errorf("iosnap: checkpoint map section: %w", r.Err())
			}
			return entries, nil, 0, nil
		case ckptSecGTD:
			r := ckpt.Reader{B: s.Data}
			slotsPer = int(r.U32())
			n := r.U32()
			gtd = make([]mapcache.GTDEnt, 0, n)
			for i := uint32(0); i < n; i++ {
				gtd = append(gtd, mapcache.GTDEnt{Idx: r.U64(), Addr: r.U64(), Live: int(r.U32())})
			}
			if r.Err() != nil {
				return nil, nil, 0, fmt.Errorf("iosnap: checkpoint GTD section: %w", r.Err())
			}
			return nil, gtd, slotsPer, nil
		}
	}
	return nil, nil, 0, fmt.Errorf("iosnap: checkpoint map section missing")
}

func decodeCkptTree(secs []ckpt.Section) (*ckptTreeState, error) {
	for _, s := range secs {
		if s.Kind != ckptSecTree {
			continue
		}
		r := ckpt.Reader{B: s.Data}
		st := &ckptTreeState{
			counter: bitmap.Epoch(r.U64()),
			active:  bitmap.Epoch(r.U64()),
		}
		nSnaps := r.U32()
		for i := uint32(0); i < nSnaps; i++ {
			st.snaps = append(st.snaps, ckptSnapRec{
				id:       SnapshotID(r.U64()),
				epoch:    bitmap.Epoch(r.U64()),
				parentID: SnapshotID(r.U64()),
				deleted:  r.Bool(),
				noteAddr: nand.PageAddr(r.U64()),
			})
		}
		nSegs := r.U32()
		for i := uint32(0); i < nSegs; i++ {
			rec := ckptSegRec{
				seg:    int(r.U32()),
				erases: int(r.U32()),
				prog:   int(r.U32()),
				maxSeq: r.U64(),
			}
			nEps := r.U32()
			for j := uint32(0); j < nEps; j++ {
				rec.presence = append(rec.presence, bitmap.Epoch(r.U64()))
			}
			st.table = append(st.table, rec)
		}
		if r.Err() != nil {
			return nil, fmt.Errorf("iosnap: checkpoint tree section: %w", r.Err())
		}
		return st, nil
	}
	return nil, fmt.Errorf("iosnap: checkpoint tree section missing")
}

func decodeCkptValid(secs []ckpt.Section, bitsPerPage int64) ([]ckptEpochRec, error) {
	for _, s := range secs {
		if s.Kind != ckptSecValid {
			continue
		}
		r := ckpt.Reader{B: s.Data}
		if got := int64(r.U64()); got != bitsPerPage {
			return nil, fmt.Errorf("iosnap: checkpoint bitmap granularity %d, store uses %d", got, bitsPerPage)
		}
		words := int(bitsPerPage / 64)
		nEpochs := r.U32()
		var out []ckptEpochRec
		for i := uint32(0); i < nEpochs; i++ {
			er := ckptEpochRec{
				epoch:   bitmap.Epoch(r.U64()),
				parent:  bitmap.Epoch(r.U64()),
				deleted: r.Bool(),
			}
			nPages := r.U32()
			for j := uint32(0); j < nPages; j++ {
				pg := bitmap.OwnedPage{PageIdx: int64(r.U64()), Words: make([]uint64, words)}
				for w := 0; w < words; w++ {
					pg.Words[w] = r.U64()
				}
				er.pages = append(er.pages, pg)
			}
			out = append(out, er)
			if r.Err() != nil {
				return nil, fmt.Errorf("iosnap: checkpoint validity section: %w", r.Err())
			}
		}
		if r.Err() != nil {
			return nil, fmt.Errorf("iosnap: checkpoint validity section: %w", r.Err())
		}
		return out, nil
	}
	return nil, fmt.Errorf("iosnap: checkpoint validity section missing")
}

// checkSegTable decides whether a checkpoint's segment table still
// describes the device, returning the recorded-segment index. ok=false
// means a recorded segment was erased, retired, or rewound since
// serialization — the cleaner moved pre-cut-off blocks, so the generation
// is stale and recovery must fall back to the full scan.
func checkSegTable(dev *nand.Device, table []ckptSegRec) (recorded map[int]ckptSegRec, ok bool) {
	recorded = make(map[int]ckptSegRec, len(table))
	for _, rec := range table {
		if rec.seg < 0 || rec.seg >= dev.Config().Segments {
			return nil, false
		}
		if dev.SegmentHealth(rec.seg) == nand.Retired {
			return nil, false
		}
		if dev.EraseCount(rec.seg) != rec.erases {
			return nil, false
		}
		if dev.NextFreeInSegment(rec.seg) < rec.prog {
			return nil, false
		}
		recorded[rec.seg] = rec
	}
	return recorded, true
}
