package iosnap

import (
	"bytes"
	"testing"

	"iosnap/internal/faultinject"
	"iosnap/internal/nand"
	"iosnap/internal/sim"
)

// duplicateDevice clones the scenario's device twice via the image
// round-trip, so tail-bounded and full-scan recovery can each run against
// an identical copy of the crashed media (full-scan recovery clears the
// anchor, so the two legs must not share a device).
func duplicateDevice(t *testing.T, dev *nand.Device) (*nand.Device, *nand.Device) {
	t.Helper()
	var buf bytes.Buffer
	if err := dev.SaveImage(&buf); err != nil {
		t.Fatalf("SaveImage: %v", err)
	}
	a, err := nand.LoadImage(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadImage: %v", err)
	}
	b, err := nand.LoadImage(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadImage: %v", err)
	}
	return a, b
}

// ckptConfig: testConfig on a 64-segment device. A post-checkpoint erase
// legitimately invalidates the generation (its segment table and forward map
// describe pre-erase media), so the tail-path tests need enough headroom
// that the tail written after the checkpoint never triggers cleaning; the
// fallback tests cover the opposite case.
func ckptConfig() Config {
	cfg := testConfig()
	cfg.Nand.Segments = 64
	return cfg
}

func ckptScenario(t *testing.T, seed uint64, steps int) *crashScenario {
	t.Helper()
	f, err := New(ckptConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return driveScenario(t, f, seed, steps)
}

// tailChurn appends post-checkpoint activity — writes, one snapshot create,
// one snapshot delete — so recovery has a real tail to replay on top of the
// checkpointed state.
func tailChurn(t *testing.T, s *crashScenario, seed uint64) {
	t.Helper()
	f := s.f
	ss := f.SectorSize()
	rng := sim.NewRNG(seed)
	write := func(i int) {
		f.sched.RunUntil(s.now)
		lba := rng.Int63n(70)
		v := byte(200 + i%50)
		d, err := f.Write(s.now, lba, sectorPattern(ss, lba, v))
		if err != nil {
			t.Fatalf("tail write: %v", err)
		}
		s.model[lba] = v
		s.now = d
	}
	for i := 0; i < 8; i++ {
		write(i)
	}
	snap, d, err := f.CreateSnapshot(s.now)
	if err != nil {
		t.Fatalf("tail create: %v", err)
	}
	s.now = d
	frozen := make(map[int64]byte, len(s.model))
	for k, v := range s.model {
		frozen[k] = v
	}
	s.snapState[snap.ID] = frozen
	for i := 8; i < 16; i++ {
		write(i)
	}
	// Delete a pre-checkpoint snapshot if one is still live, exercising
	// delete-note replay against checkpointed tree state; otherwise delete
	// the one just created.
	victim := snap.ID
	for _, sn := range f.Snapshots() {
		if sn.ID != snap.ID {
			victim = sn.ID
			break
		}
	}
	if d, err := f.DeleteSnapshot(s.now, victim); err == nil {
		s.now = d
		s.deleted[victim] = true
	}
	for i := 16; i < 24; i++ {
		write(i)
	}
	s.now = f.sched.Drain(s.now)
}

func verifyModel(t *testing.T, f *FTL, now sim.Time, model map[int64]byte) {
	t.Helper()
	buf := make([]byte, f.SectorSize())
	for lba, v := range model {
		if _, err := f.Read(now, lba, buf); err != nil {
			t.Fatalf("read LBA %d: %v", lba, err)
		}
		if !bytes.Equal(buf, sectorPattern(f.SectorSize(), lba, v)) {
			t.Fatalf("LBA %d wrong after recovery", lba)
		}
	}
}

// TestCloseWritesCheckpoint: a clean shutdown leaves an anchored checkpoint
// generation behind, and the next mount takes the tail-bounded path.
func TestCloseWritesCheckpoint(t *testing.T) {
	s := runScenario(t, 7, 250)
	f := s.f
	now, err := f.Close(s.now)
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := f.Stats()
	if st.Checkpoints < 1 || st.CheckpointChunks < 3 {
		t.Fatalf("Close wrote no checkpoint: %+v", st)
	}
	if f.Device().Anchor() == nil {
		t.Fatal("no anchor after Close")
	}
	r, now, err := Recover(f.Config(), f.Device(), nil, now)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !r.Stats().RecoveryTailBounded {
		t.Fatal("recovery after clean Close did not take the tail-bounded path")
	}
	if r.Stats().RecoveryFallbacks != 0 {
		t.Fatal("clean Close recovery fell back")
	}
	verifyModel(t, r, now, s.model)
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("invariants after tail recovery: %v", err)
	}
}

// TestTailRecoveryMatchesFullScan: the property at the heart of the tail
// path — for the same crashed device, tail-bounded recovery and full-scan
// recovery must reconstruct byte-identical FTL state, and the tail path
// must read strictly fewer header pages.
func TestTailRecoveryMatchesFullScan(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4} {
		s := ckptScenario(t, seed, 300)
		f := s.f
		if !f.StartCheckpoint(s.now) {
			t.Fatalf("seed %d: StartCheckpoint refused", seed)
		}
		s.now = f.sched.Drain(s.now)
		if f.Stats().Checkpoints < 1 {
			t.Fatalf("seed %d: checkpoint did not commit", seed)
		}
		tailChurn(t, s, seed+100)
		// Crash here: no Close. Recover two identical copies both ways.
		devA, devB := duplicateDevice(t, f.Device())
		a, nowA, err := Recover(f.Config(), devA, nil, s.now)
		if err != nil {
			t.Fatalf("seed %d: tail recover: %v", seed, err)
		}
		b, _, err := RecoverFullScan(f.Config(), devB, nil, s.now)
		if err != nil {
			t.Fatalf("seed %d: full-scan recover: %v", seed, err)
		}
		if !a.Stats().RecoveryTailBounded {
			t.Fatalf("seed %d: anchored device did not take the tail path", seed)
		}
		if b.Stats().RecoveryTailBounded {
			t.Fatalf("seed %d: full-scan leg claims tail-bounded", seed)
		}
		if err := CompareRecovered(a, b); err != nil {
			t.Fatalf("seed %d: tail vs full-scan divergence: %v", seed, err)
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: tail invariants: %v", seed, err)
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: full-scan invariants: %v", seed, err)
		}
		if ap, bp := a.Stats().RecoveryHeaderPages, b.Stats().RecoveryHeaderPages; ap >= bp {
			t.Fatalf("seed %d: tail path scanned %d header pages, full scan %d", seed, ap, bp)
		}
		verifyModel(t, a, nowA, s.model)
	}
}

// TestTailRecoveryFallsBack: a checkpoint generation that cannot be loaded
// whole — a missing chunk, or an anchor naming the wrong generation — must
// be rejected in favour of the full scan, losing nothing.
func TestTailRecoveryFallsBack(t *testing.T) {
	tamper := map[string]func(a *nand.Anchor) *nand.Anchor{
		"missing-chunk": func(a *nand.Anchor) *nand.Anchor {
			a.Addrs = a.Addrs[:len(a.Addrs)-1]
			return a
		},
		"wrong-generation": func(a *nand.Anchor) *nand.Anchor {
			a.ID++
			return a
		},
		"empty-anchor": func(a *nand.Anchor) *nand.Anchor {
			a.Addrs = nil
			return a
		},
	}
	for name, mutate := range tamper {
		t.Run(name, func(t *testing.T) {
			s := runScenario(t, 11, 250)
			now, err := s.f.Close(s.now)
			if err != nil {
				t.Fatal(err)
			}
			dev := s.f.Device()
			anchor := dev.Anchor()
			if anchor == nil || len(anchor.Addrs) < 2 {
				t.Fatalf("unexpectedly small checkpoint: %+v", anchor)
			}
			dev.SetAnchor(mutate(anchor))
			r, now, err := Recover(s.f.Config(), dev, nil, now)
			if err != nil {
				t.Fatalf("recovery with tampered anchor: %v", err)
			}
			st := r.Stats()
			if st.RecoveryTailBounded {
				t.Fatal("tampered anchor accepted by the tail path")
			}
			if st.RecoveryFallbacks != 1 {
				t.Fatalf("RecoveryFallbacks = %d, want 1", st.RecoveryFallbacks)
			}
			verifyModel(t, r, now, s.model)
			if err := r.CheckInvariants(); err != nil {
				t.Fatalf("invariants after fallback: %v", err)
			}
		})
	}
}

// TestTornChunkFallsBack: a chunk page whose header was torn mid-program is
// unreadable at mount; the tail path must reject the generation, not trust
// a partially-written checkpoint.
func TestTornChunkFallsBack(t *testing.T) {
	s := runScenario(t, 13, 250)
	now, err := s.f.Close(s.now)
	if err != nil {
		t.Fatal(err)
	}
	dev := s.f.Device()
	anchor := dev.Anchor()
	if anchor == nil || len(anchor.Addrs) == 0 {
		t.Fatal("no checkpoint")
	}
	// Simulate the torn OOB by re-anchoring one chunk slot at a blank page:
	// the header there is unparseable, exactly as a torn program reads back.
	free := -1
	for seg := 0; seg < s.f.Config().Nand.Segments; seg++ {
		if dev.ProgrammedInSegment(seg) == 0 && dev.SegmentHealth(seg) == nand.Healthy {
			free = seg
			break
		}
	}
	if free < 0 {
		t.Fatal("no free segment to fake a torn chunk")
	}
	anchor.Addrs[0] = dev.Addr(free, 0)
	dev.SetAnchor(anchor)
	r, now, err := Recover(s.f.Config(), dev, nil, now)
	if err != nil {
		t.Fatalf("recovery with torn chunk: %v", err)
	}
	if r.Stats().RecoveryTailBounded || r.Stats().RecoveryFallbacks != 1 {
		t.Fatalf("torn chunk not rejected: %+v", r.Stats())
	}
	verifyModel(t, r, now, s.model)
}

// TestCheckpointChunksSurviveGC: the cleaner may relocate pinned checkpoint
// chunks; the anchor must follow them so a later mount still finds the
// generation intact.
func TestCheckpointChunksSurviveGC(t *testing.T) {
	s := runScenario(t, 17, 300)
	f := s.f
	if !f.StartCheckpoint(s.now) {
		t.Fatal("StartCheckpoint refused")
	}
	s.now = f.sched.Drain(s.now)
	before := append([]nand.PageAddr(nil), f.anchorAddrs...)
	if len(before) == 0 {
		t.Fatal("no committed checkpoint")
	}
	// Force-clean every non-head segment that holds a chunk. Pins follow the
	// relocated pages, so re-read the anchor addresses each round; each
	// segment is cleaned at most once, bounding the loop.
	moved := false
	cleaned := make(map[int]bool)
	for {
		target := -1
		for _, addr := range f.anchorAddrs {
			seg := f.dev.SegmentOf(addr)
			if seg != f.headSeg && !cleaned[seg] {
				target = seg
				break
			}
		}
		if target < 0 {
			break
		}
		cleaned[target] = true
		if err := f.ForceClean(s.now, target); err != nil {
			t.Fatalf("ForceClean(%d): %v", target, err)
		}
		s.now = f.sched.Drain(s.now)
		moved = true
	}
	if !moved {
		t.Skip("all chunks landed on the head segment; nothing to relocate")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants after relocating chunks: %v", err)
	}
	anchor := f.Device().Anchor()
	if anchor == nil || len(anchor.Addrs) != len(before) {
		t.Fatalf("anchor lost chunks across GC: %+v", anchor)
	}
	changed := false
	for i, a := range anchor.Addrs {
		if a != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("force-clean moved nothing; test proves nothing")
	}
	// The generation is now stale (its segment table describes pre-erase
	// media), but because its chunks were relocated rather than reclaimed,
	// recovery reads them cleanly, detects the staleness, and falls back —
	// it must never mount garbage or fail outright.
	devStale, _ := duplicateDevice(t, f.Device())
	r, now, err := Recover(f.Config(), devStale, nil, s.now)
	if err != nil {
		t.Fatalf("recover after chunk relocation: %v", err)
	}
	if r.Stats().RecoveryTailBounded || r.Stats().RecoveryFallbacks != 1 {
		t.Fatalf("stale relocated generation not detected: %+v", r.Stats())
	}
	verifyModel(t, r, now, s.model)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A fresh checkpoint on the live FTL re-anchors against current media;
	// the next mount takes the tail path again.
	if !f.StartCheckpoint(s.now) {
		t.Fatal("re-checkpoint refused")
	}
	s.now = f.sched.Drain(s.now)
	r2, now2, err := Recover(f.Config(), f.Device(), nil, s.now)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Stats().RecoveryTailBounded {
		t.Fatal("fresh checkpoint after GC not tail-mountable")
	}
	verifyModel(t, r2, now2, s.model)
	if err := r2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPeriodicCheckpoint: with CheckpointInterval armed, checkpoints commit
// in the background as the log head rolls — no Close required — and a crash
// afterwards still mounts tail-bounded.
func TestPeriodicCheckpoint(t *testing.T) {
	cfg := ckptConfig()
	cfg.CheckpointInterval = 1 * sim.Millisecond
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := f.SectorSize()
	model := make(map[int64]byte)
	now := sim.Time(0)
	for i := 0; i < 400; i++ {
		f.sched.RunUntil(now)
		lba := int64(i % 60)
		v := byte(i%250 + 1)
		d, err := f.Write(now, lba, sectorPattern(ss, lba, v))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		model[lba] = v
		now = d
		// Idle gaps let virtual time cross the interval between head rolls.
		now = now.Add(100 * sim.Microsecond)
	}
	now = f.sched.Drain(now)
	st := f.Stats()
	if st.Checkpoints < 2 {
		t.Fatalf("periodic checkpointing committed %d generations, want >= 2", st.Checkpoints)
	}
	if f.Device().Anchor() == nil {
		t.Fatal("no anchor from periodic checkpoints")
	}
	// Crash without Close.
	r, now, err := Recover(cfg, f.Device(), nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats().RecoveryTailBounded {
		t.Fatal("periodic checkpoint not used by recovery")
	}
	verifyModel(t, r, now, model)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointChunkFailureSealsHead: a permanent media failure while
// programming a chunk must abort the checkpoint, seal the log head off the
// failing segment, and leave the FTL fully writable — the regression the
// vanilla FTL shipped.
func TestCheckpointChunkFailureSealsHead(t *testing.T) {
	s := runScenario(t, 19, 200)
	f := s.f
	oldHead := f.headSeg
	plan := faultinject.NewPlan(0, faultinject.Rule{
		Kind: faultinject.KindTransient, Op: nand.OpProgram, Seg: faultinject.AnySeg,
		AfterN: 1, Times: 10, // outlasts the retry budget: a permanent failure
	})
	plan.Arm(f.Device())
	if !f.StartCheckpoint(s.now) {
		t.Fatal("StartCheckpoint refused")
	}
	s.now = f.sched.Drain(s.now)
	plan.Disarm(f.Device())
	st := f.Stats()
	if st.CheckpointErrors < 1 {
		t.Fatalf("failed checkpoint not counted: %+v", st)
	}
	if st.Checkpoints != 0 {
		t.Fatal("failed checkpoint claims to have committed")
	}
	if f.Device().Anchor() != nil {
		t.Fatal("aborted checkpoint left an anchor")
	}
	if f.headSeg == oldHead {
		t.Fatal("head not sealed off the failing segment")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants after aborted checkpoint: %v", err)
	}
	// The device keeps working, and a retried checkpoint commits.
	d, err := f.Write(s.now, 1, sectorPattern(f.SectorSize(), 1, 77))
	if err != nil {
		t.Fatalf("write after sealed head: %v", err)
	}
	s.model[1] = 77
	s.now = d
	if !f.StartCheckpoint(s.now) {
		t.Fatal("retry StartCheckpoint refused")
	}
	s.now = f.sched.Drain(s.now)
	if f.Stats().Checkpoints != 1 {
		t.Fatalf("retried checkpoint did not commit: %+v", f.Stats())
	}
	r, now, err := Recover(f.Config(), f.Device(), nil, s.now)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats().RecoveryTailBounded {
		t.Fatal("retried checkpoint not tail-mountable")
	}
	verifyModel(t, r, now, s.model)
}

// TestSnapshotsSurviveTailRecovery: snapshot content frozen before the
// checkpoint — and before the crash — reads back exactly through an
// activation on the tail-recovered FTL.
func TestSnapshotsSurviveTailRecovery(t *testing.T) {
	s := ckptScenario(t, 23, 350)
	f := s.f
	if !f.StartCheckpoint(s.now) {
		t.Fatal("StartCheckpoint refused")
	}
	s.now = f.sched.Drain(s.now)
	tailChurn(t, s, 999)
	r, now, err := Recover(f.Config(), f.Device(), nil, s.now)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats().RecoveryTailBounded {
		t.Fatal("expected tail-bounded recovery")
	}
	checked := 0
	for id, frozen := range s.snapState {
		if s.deleted[id] {
			continue
		}
		view, d, err := r.ActivateSync(now, id, noLimit, false)
		if err != nil {
			t.Fatalf("activating snapshot %d after tail recovery: %v", id, err)
		}
		now = d
		buf := make([]byte, r.SectorSize())
		for lba, v := range frozen {
			if _, err := view.Read(now, lba, buf); err != nil {
				t.Fatalf("snapshot %d LBA %d: %v", id, lba, err)
			}
			if !bytes.Equal(buf, sectorPattern(r.SectorSize(), lba, v)) {
				t.Fatalf("snapshot %d LBA %d content mismatch", id, lba)
			}
		}
		if _, err := view.Deactivate(now); err != nil {
			t.Fatal(err)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("scenario left no live snapshots to verify")
	}
}
