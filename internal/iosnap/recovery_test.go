package iosnap

import (
	"bytes"
	"testing"

	"iosnap/internal/sim"
)

// crashScenario drives a randomized mix of writes, snapshot creates and
// deletes, recording the model state of the active device and every live
// snapshot at its freeze point.
type crashScenario struct {
	f         *FTL
	now       sim.Time
	model     map[int64]byte
	snapState map[SnapshotID]map[int64]byte
	deleted   map[SnapshotID]bool
}

func runScenario(t *testing.T, seed uint64, steps int) *crashScenario {
	t.Helper()
	return driveScenario(t, mustNew(t), seed, steps)
}

// driveScenario runs the randomized workload against a caller-built FTL
// (checkpoint tests use a larger device so the tail after a checkpoint
// stays GC-quiet).
func driveScenario(t *testing.T, f0 *FTL, seed uint64, steps int) *crashScenario {
	t.Helper()
	s := &crashScenario{
		f:         f0,
		model:     make(map[int64]byte),
		snapState: make(map[SnapshotID]map[int64]byte),
		deleted:   make(map[SnapshotID]bool),
	}
	f := s.f
	ss := f.SectorSize()
	rng := sim.NewRNG(seed)
	var liveSnaps []SnapshotID
	for i := 0; i < steps; i++ {
		f.sched.RunUntil(s.now)
		switch op := rng.Intn(20); {
		case op == 0 && len(liveSnaps) < 2:
			// Bound live snapshots: each one pins its divergent blocks, and
			// the 256-page test device genuinely fills up otherwise (the
			// paper's "limited only by capacity" in miniature).
			snap, d, err := f.CreateSnapshot(s.now)
			if err != nil {
				t.Fatalf("seed %d step %d create: %v", seed, i, err)
			}
			s.now = d
			frozen := make(map[int64]byte, len(s.model))
			for k, v := range s.model {
				frozen[k] = v
			}
			s.snapState[snap.ID] = frozen
			liveSnaps = append(liveSnaps, snap.ID)
		case op == 1 && len(liveSnaps) > 0:
			idx := rng.Intn(len(liveSnaps))
			id := liveSnaps[idx]
			d, err := f.DeleteSnapshot(s.now, id)
			if err != nil {
				t.Fatalf("seed %d step %d delete: %v", seed, i, err)
			}
			s.now = d
			s.deleted[id] = true
			liveSnaps = append(liveSnaps[:idx], liveSnaps[idx+1:]...)
		default:
			lba := rng.Int63n(70)
			v := byte(i%250 + 1)
			d, err := f.Write(s.now, lba, sectorPattern(ss, lba, v))
			if err != nil {
				t.Fatalf("seed %d step %d write: %v", seed, i, err)
			}
			s.model[lba] = v
			s.now = d
		}
	}
	s.now = f.sched.Drain(s.now)
	return s
}

func mustNew(t *testing.T) *FTL {
	t.Helper()
	f, err := New(testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRecoverActiveState(t *testing.T) {
	s := runScenario(t, 1, 400)
	r, now, err := Recover(s.f.Config(), s.f.Device(), nil, s.now)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	buf := make([]byte, r.SectorSize())
	for lba, v := range s.model {
		if _, err := r.Read(now, lba, buf); err != nil {
			t.Fatalf("post-recovery read %d: %v", lba, err)
		}
		if !bytes.Equal(buf, sectorPattern(r.SectorSize(), lba, v)) {
			t.Fatalf("LBA %d wrong after recovery", lba)
		}
	}
	if r.MappedSectors() != len(s.model) {
		t.Fatalf("mapped %d, want %d", r.MappedSectors(), len(s.model))
	}
}

func TestRecoverSnapshotTree(t *testing.T) {
	s := runScenario(t, 2, 500)
	r, _, err := Recover(s.f.Config(), s.f.Device(), nil, s.now)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tree().Len() != s.f.Tree().Len() {
		t.Fatalf("tree size %d, want %d", r.Tree().Len(), s.f.Tree().Len())
	}
	for _, id := range s.f.Tree().IDs() {
		orig, _ := s.f.Tree().Lookup(id)
		rec, ok := r.Tree().Lookup(id)
		if !ok {
			t.Fatalf("snapshot %d lost", id)
		}
		if rec.Epoch != orig.Epoch || rec.Deleted != orig.Deleted {
			t.Fatalf("snapshot %d mismatch: %+v vs %+v", id, rec, orig)
		}
		op, rp := orig.Parent, rec.Parent
		if (op == nil) != (rp == nil) || (op != nil && op.ID != rp.ID) {
			t.Fatalf("snapshot %d parent mismatch", id)
		}
	}
	if r.ActiveEpoch() != s.f.ActiveEpoch() {
		t.Fatalf("active epoch %d, want %d", r.ActiveEpoch(), s.f.ActiveEpoch())
	}
}

func TestRecoverThenActivateSnapshots(t *testing.T) {
	// The strongest property: every live snapshot must activate to exactly
	// its freeze-time state after a crash.
	for _, seed := range []uint64{3, 4, 5} {
		s := runScenario(t, seed, 450)
		r, now, err := Recover(s.f.Config(), s.f.Device(), nil, s.now)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		buf := make([]byte, r.SectorSize())
		checked := 0
		for id, frozen := range s.snapState {
			if s.deleted[id] {
				continue
			}
			view, d, err := r.ActivateSync(now, id, noLimit, false)
			if err != nil {
				t.Fatalf("seed %d activating %d after recovery: %v", seed, id, err)
			}
			now = d
			for lba, v := range frozen {
				if _, err := view.Read(now, lba, buf); err != nil {
					t.Fatalf("seed %d snap %d read %d: %v", seed, id, lba, err)
				}
				if !bytes.Equal(buf, sectorPattern(r.SectorSize(), lba, v)) {
					t.Fatalf("seed %d: snapshot %d LBA %d wrong after crash recovery", seed, id, lba)
				}
			}
			if view.MappedSectors() != len(frozen) {
				t.Fatalf("seed %d snap %d mapped %d, want %d", seed, id, view.MappedSectors(), len(frozen))
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("seed %d produced no live snapshots; scenario too weak", seed)
		}
	}
}

func TestRecoveredDeviceKeepsWorking(t *testing.T) {
	s := runScenario(t, 6, 300)
	r, now, err := Recover(s.f.Config(), s.f.Device(), nil, s.now)
	if err != nil {
		t.Fatal(err)
	}
	ss := r.SectorSize()
	rng := sim.NewRNG(60)
	model := s.model
	for i := 0; i < 400; i++ {
		r.Scheduler().RunUntil(now)
		lba := rng.Int63n(70)
		v := byte(i%200 + 1)
		d, err := r.Write(now, lba, sectorPattern(ss, lba, v))
		if err != nil {
			t.Fatalf("post-recovery write %d: %v", i, err)
		}
		model[lba] = v
		now = d
	}
	// New snapshots on the recovered device.
	snap, now, err := r.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	now = r.Scheduler().Drain(now)
	view, now, err := r.ActivateSync(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ss)
	for lba, v := range model {
		if _, err := view.Read(now, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, v)) {
			t.Fatalf("LBA %d wrong in post-recovery snapshot", lba)
		}
	}
}

func TestDoubleCrash(t *testing.T) {
	// Crash, recover, write more, crash again, recover again: snapshot
	// notes must have survived both crashes.
	s := runScenario(t, 7, 350)
	r1, now, err := Recover(s.f.Config(), s.f.Device(), nil, s.now)
	if err != nil {
		t.Fatal(err)
	}
	ss := r1.SectorSize()
	rng := sim.NewRNG(71)
	for i := 0; i < 200; i++ {
		r1.Scheduler().RunUntil(now)
		lba := rng.Int63n(70)
		d, err := r1.Write(now, lba, sectorPattern(ss, lba, byte(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		now = d
	}
	now = r1.Scheduler().Drain(now)
	r2, now, err := Recover(r1.Config(), r1.Device(), nil, now)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if r2.Tree().Len() != s.f.Tree().Len() {
		t.Fatalf("tree lost across double crash: %d vs %d", r2.Tree().Len(), s.f.Tree().Len())
	}
	// Live snapshots must still activate correctly.
	buf := make([]byte, ss)
	for id, frozen := range s.snapState {
		if s.deleted[id] {
			continue
		}
		view, d, err := r2.ActivateSync(now, id, noLimit, false)
		if err != nil {
			t.Fatalf("activating %d after double crash: %v", id, err)
		}
		now = d
		for lba, v := range frozen {
			if _, err := view.Read(now, lba, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, sectorPattern(ss, lba, v)) {
				t.Fatalf("snapshot %d LBA %d wrong after double crash", id, lba)
			}
		}
	}
}

func TestRecoverFreshDevice(t *testing.T) {
	f := mustNew(t)
	r, _, err := Recover(f.Config(), f.Device(), nil, 0)
	if err != nil {
		t.Fatalf("fresh recovery: %v", err)
	}
	if r.MappedSectors() != 0 || r.Tree().Len() != 0 {
		t.Fatal("fresh recovery produced state")
	}
	if _, err := r.Write(0, 0, make([]byte, r.SectorSize())); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverGeometryMismatch(t *testing.T) {
	f := mustNew(t)
	other := testConfig()
	other.Nand.Segments = 8
	other.UserSectors = 64
	if _, _, err := Recover(other, f.Device(), nil, 0); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestRecoverAfterDeleteReclaims(t *testing.T) {
	// Deleted snapshots must stay deleted after recovery, and their blocks
	// must be reclaimable.
	f := mustNew(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 50; lba++ {
		f.sched.RunUntil(now)
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
	}
	snap, now, _ := f.CreateSnapshot(now)
	for lba := int64(0); lba < 50; lba++ {
		f.sched.RunUntil(now)
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 2))
	}
	now, err := f.DeleteSnapshot(now, snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	r, now, err := Recover(f.Config(), f.Device(), nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ActivateSync(now, snap.ID, noLimit, false); err == nil {
		t.Fatal("deleted snapshot activated after recovery")
	}
	// Churn: the deleted snapshot's blocks must be reclaimed, so this fits.
	rng := sim.NewRNG(8)
	for i := 0; i < 400; i++ {
		r.Scheduler().RunUntil(now)
		lba := rng.Int63n(50)
		d, err := r.Write(now, lba, sectorPattern(ss, lba, byte(i)))
		if err != nil {
			t.Fatalf("churn after recovery of deleted snapshot: %v", err)
		}
		now = d
	}
}
