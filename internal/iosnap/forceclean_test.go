package iosnap

import (
	"bytes"
	"testing"

	"iosnap/internal/sim"
)

func TestForceCleanTargetsSegment(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	// Fill two segments, overwrite half of the first's LBAs.
	for lba := int64(0); lba < 32; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
	}
	for lba := int64(0); lba < 8; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 2))
	}
	target := f.UsedSegments()[0]
	if err := f.ForceClean(now, target); err != nil {
		t.Fatalf("ForceClean: %v", err)
	}
	if !f.CleaningActive() {
		t.Fatal("cleaning not active after ForceClean")
	}
	now = f.sched.Drain(now)
	if f.CleaningActive() {
		t.Fatal("cleaning still active after drain")
	}
	if f.Device().ProgrammedInSegment(target) != 0 {
		t.Fatal("target segment not erased")
	}
	// Contents intact.
	buf := make([]byte, ss)
	for lba := int64(0); lba < 32; lba++ {
		want := byte(1)
		if lba < 8 {
			want = 2
		}
		if _, err := f.Read(now, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, want)) {
			t.Fatalf("LBA %d wrong after forced clean", lba)
		}
	}
}

func TestForceCleanErrors(t *testing.T) {
	f := newTestFTL(t)
	now := sim.Time(0)
	now, _ = f.Write(now, 0, sectorPattern(f.SectorSize(), 0, 1))
	if err := f.ForceClean(now, f.headSeg); err == nil {
		t.Fatal("cleaning the log head accepted")
	}
	if err := f.ForceClean(now, -1); err == nil {
		t.Fatal("negative segment accepted")
	}
	if err := f.ForceClean(now, 999); err == nil {
		t.Fatal("out-of-range segment accepted")
	}
	// A free (unused) segment is rejected.
	free := f.freeSegs[0]
	if err := f.ForceClean(now, free); err == nil {
		t.Fatal("unused segment accepted")
	}
	// Two concurrent forced cleans are rejected.
	for lba := int64(0); lba < 40; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(f.SectorSize(), lba, 1))
	}
	target := f.UsedSegments()[0]
	if err := f.ForceClean(now, target); err != nil {
		t.Fatal(err)
	}
	if err := f.ForceClean(now, f.UsedSegments()[1]); err == nil {
		t.Fatal("second concurrent forced clean accepted")
	}
}

func TestForceCleanPreservesSnapshotBlocks(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 16; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
	}
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite everything: segment 0 is now 100% invalid in the active
	// epoch but 100% valid in the snapshot.
	for lba := int64(0); lba < 16; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 2))
	}
	target := f.UsedSegments()[0]
	if err := f.ForceClean(now, target); err != nil {
		t.Fatal(err)
	}
	now = f.sched.Drain(now)
	view, now, err := f.ActivateSync(now, snap.ID, noLimit, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ss)
	for lba := int64(0); lba < 16; lba++ {
		if _, err := view.Read(now, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, sectorPattern(ss, lba, 1)) {
			t.Fatalf("snapshot block %d lost by forced clean", lba)
		}
	}
}

func TestCountValidHooksAgree(t *testing.T) {
	f := newTestFTL(t)
	ss := f.SectorSize()
	now := sim.Time(0)
	for lba := int64(0); lba < 16; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 1))
	}
	_, now, _ = f.CreateSnapshot(now)
	for lba := int64(0); lba < 8; lba++ {
		now, _ = f.Write(now, lba, sectorPattern(ss, lba, 2))
	}
	total := f.cfg.Nand.TotalPages()
	active := f.CountValidActive(0, total)
	merged := f.CountValidMerged(0, total)
	// Active: 16 data + note. Merged additionally sees the 8 overwritten
	// originals pinned by the snapshot.
	if merged <= active {
		t.Fatalf("merged %d should exceed active %d with pinned blocks", merged, active)
	}
	if merged-active != 8 {
		t.Fatalf("pinned delta = %d, want 8", merged-active)
	}
}
