package trace

import (
	"bytes"
	"errors"
	"testing"

	"iosnap/internal/sim"
)

// memDev is a simple in-memory device for trace tests.
type memDev struct {
	ss      int
	sectors int64
	latency sim.Duration
	ops     []Op
	failAll bool
}

func (d *memDev) SectorSize() int { return d.ss }
func (d *memDev) Sectors() int64  { return d.sectors }
func (d *memDev) Read(now sim.Time, lba int64, buf []byte) (sim.Time, error) {
	if d.failAll {
		return now, errors.New("boom")
	}
	d.ops = append(d.ops, Op{Kind: OpRead, At: now, LBA: lba, Sectors: int32(len(buf) / d.ss)})
	return now.Add(d.latency), nil
}
func (d *memDev) Write(now sim.Time, lba int64, data []byte) (sim.Time, error) {
	if d.failAll {
		return now, errors.New("boom")
	}
	d.ops = append(d.ops, Op{Kind: OpWrite, At: now, LBA: lba, Sectors: int32(len(data) / d.ss)})
	return now.Add(d.latency), nil
}
func (d *memDev) Trim(now sim.Time, lba, n int64) (sim.Time, error) {
	if d.failAll {
		return now, errors.New("boom")
	}
	d.ops = append(d.ops, Op{Kind: OpTrim, At: now, LBA: lba, Sectors: int32(n)})
	return now, nil
}

func newMem() *memDev { return &memDev{ss: 512, sectors: 4096, latency: 10 * sim.Microsecond} }

func TestRecorderCaptures(t *testing.T) {
	d := newMem()
	r := NewRecorder(d)
	buf := make([]byte, 512)
	now, _ := r.Write(0, 5, buf)
	now, _ = r.Read(now, 5, buf)
	now, _ = r.Write(now, 9, make([]byte, 1024))
	if _, err := r.Trim(now, 5, 2); err != nil {
		t.Fatal(err)
	}
	tr := r.Trace()
	if len(tr.Ops) != 4 {
		t.Fatalf("recorded %d ops", len(tr.Ops))
	}
	want := []Op{
		{Kind: OpWrite, LBA: 5, Sectors: 1},
		{Kind: OpRead, LBA: 5, Sectors: 1},
		{Kind: OpWrite, LBA: 9, Sectors: 2},
		{Kind: OpTrim, LBA: 5, Sectors: 2},
	}
	for i, w := range want {
		g := tr.Ops[i]
		if g.Kind != w.Kind || g.LBA != w.LBA || g.Sectors != w.Sectors {
			t.Fatalf("op %d = %+v, want %+v", i, g, w)
		}
	}
	if r.SectorSize() != 512 || r.Sectors() != 4096 {
		t.Fatal("recorder accessors wrong")
	}
}

func TestRecorderSkipsFailedOps(t *testing.T) {
	d := newMem()
	d.failAll = true
	r := NewRecorder(d)
	r.Write(0, 0, make([]byte, 512))
	r.Read(0, 0, make([]byte, 512))
	if len(r.Trace().Ops) != 0 {
		t.Fatal("failed ops recorded")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := &Trace{SectorSize: 512, Ops: []Op{
		{Kind: OpWrite, At: 100, LBA: 7, Sectors: 1},
		{Kind: OpRead, At: 250, LBA: 7, Sectors: 4},
		{Kind: OpTrim, At: 300, LBA: 0, Sectors: 8},
	}}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SectorSize != 512 || len(got.Ops) != 3 {
		t.Fatalf("loaded %+v", got)
	}
	for i := range tr.Ops {
		if got.Ops[i] != tr.Ops[i] {
			t.Fatalf("op %d = %+v, want %+v", i, got.Ops[i], tr.Ops[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a trace"))); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("garbage: %v", err)
	}
	// Valid magic, truncated body.
	var buf bytes.Buffer
	(&Trace{SectorSize: 512, Ops: []Op{{Kind: OpWrite, Sectors: 1}}}).Save(&buf)
	short := buf.Bytes()[:buf.Len()-5]
	if _, err := Load(bytes.NewReader(short)); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestReplayClosedLoop(t *testing.T) {
	tr := &Trace{SectorSize: 512, Ops: []Op{
		{Kind: OpWrite, At: 0, LBA: 1, Sectors: 1},
		{Kind: OpWrite, At: 50, LBA: 2, Sectors: 1},
		{Kind: OpRead, At: 80, LBA: 1, Sectors: 1},
	}}
	d := newMem()
	res, end, err := Replay(d, 0, tr, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 3 || res.Bytes != 3*512 {
		t.Fatalf("res = %+v", res)
	}
	// Closed loop: each op starts when the previous finished.
	if d.ops[1].At != sim.Time(10*sim.Microsecond) {
		t.Fatalf("op 1 issued at %v", d.ops[1].At)
	}
	if end != sim.Time(30*sim.Microsecond) {
		t.Fatalf("end = %v", end)
	}
}

func TestReplayPreservesTiming(t *testing.T) {
	gap := sim.Time(5 * sim.Millisecond)
	tr := &Trace{SectorSize: 512, Ops: []Op{
		{Kind: OpWrite, At: 1000, LBA: 1, Sectors: 1},
		{Kind: OpWrite, At: 1000 + gap, LBA: 2, Sectors: 1},
	}}
	d := newMem()
	start := sim.Time(sim.Second)
	_, _, err := Replay(d, start, tr, ReplayOptions{PreserveTiming: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.ops[0].At != start {
		t.Fatalf("op 0 at %v, want %v", d.ops[0].At, start)
	}
	if d.ops[1].At != start+gap {
		t.Fatalf("op 1 at %v, want %v", d.ops[1].At, start+gap)
	}
}

func TestReplaySectorSizeMismatch(t *testing.T) {
	tr := &Trace{SectorSize: 4096}
	if _, _, err := Replay(newMem(), 0, tr, ReplayOptions{}); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestReplayLatencyRecording(t *testing.T) {
	tr := &Trace{SectorSize: 512, Ops: []Op{
		{Kind: OpWrite, LBA: 1, Sectors: 1},
		{Kind: OpWrite, LBA: 2, Sectors: 1},
	}}
	lat := sim.NewLatencyRecorder(0)
	if _, _, err := Replay(newMem(), 0, tr, ReplayOptions{Latency: lat}); err != nil {
		t.Fatal(err)
	}
	if lat.Count() != 2 || lat.Mean() != 10*sim.Microsecond {
		t.Fatalf("latency stats: n=%d mean=%v", lat.Count(), lat.Mean())
	}
}

func TestRecordThenReplayIdentical(t *testing.T) {
	// Record a run on one device, replay on a fresh one: the op sequence
	// (kinds, LBAs, sizes) must match exactly.
	src := newMem()
	r := NewRecorder(src)
	rng := sim.NewRNG(42)
	now := sim.Time(0)
	for i := 0; i < 200; i++ {
		lba := rng.Int63n(1000)
		var err error
		if rng.Intn(2) == 0 {
			now, err = r.Write(now, lba, make([]byte, 512))
		} else {
			now, err = r.Read(now, lba, make([]byte, 512))
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	var stream bytes.Buffer
	if err := r.Trace().Save(&stream); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&stream)
	if err != nil {
		t.Fatal(err)
	}
	dst := newMem()
	if _, _, err := Replay(dst, 0, loaded, ReplayOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(dst.ops) != len(src.ops) {
		t.Fatalf("replayed %d ops, recorded %d", len(dst.ops), len(src.ops))
	}
	for i := range src.ops {
		s, d := src.ops[i], dst.ops[i]
		if s.Kind != d.Kind || s.LBA != d.LBA || s.Sectors != d.Sectors {
			t.Fatalf("op %d: %+v vs %+v", i, s, d)
		}
	}
}
