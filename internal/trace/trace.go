// Package trace records and replays block-level I/O traces over virtual
// time. A Recorder wraps any blockdev.Device and captures every operation;
// the trace serializes to a compact binary stream and can be replayed
// against any other device — e.g., capture a workload once and run it
// against the vanilla FTL, ioSnap, and the Btrfs-like baseline for an
// apples-to-apples comparison, or archive a regression workload.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"iosnap/internal/blockdev"
	"iosnap/internal/sim"
)

// Kind is the operation type.
type Kind uint8

// Operation kinds.
const (
	OpRead Kind = iota
	OpWrite
	OpTrim
)

func (k Kind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpTrim:
		return "trim"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op is one traced operation. Payload contents are not captured — replay
// synthesizes data — so traces stay small and system-independent.
type Op struct {
	Kind    Kind
	At      sim.Time // submission time in the original run
	LBA     int64
	Sectors int32
}

// Trace is an ordered operation log.
type Trace struct {
	SectorSize int
	Ops        []Op
}

// Recorder wraps a device and records every operation that succeeds.
type Recorder struct {
	inner blockdev.Device
	trace Trace
}

// NewRecorder wraps dev.
func NewRecorder(dev blockdev.Device) *Recorder {
	return &Recorder{inner: dev, trace: Trace{SectorSize: dev.SectorSize()}}
}

// Trace returns the recorded trace (shared storage; copy before mutating).
func (r *Recorder) Trace() *Trace { return &r.trace }

// SectorSize implements blockdev.Device.
func (r *Recorder) SectorSize() int { return r.inner.SectorSize() }

// Sectors implements blockdev.Device.
func (r *Recorder) Sectors() int64 { return r.inner.Sectors() }

// Read implements blockdev.Device.
func (r *Recorder) Read(now sim.Time, lba int64, buf []byte) (sim.Time, error) {
	done, err := r.inner.Read(now, lba, buf)
	if err == nil {
		r.trace.Ops = append(r.trace.Ops, Op{Kind: OpRead, At: now, LBA: lba, Sectors: int32(len(buf) / r.inner.SectorSize())})
	}
	return done, err
}

// Write implements blockdev.Device.
func (r *Recorder) Write(now sim.Time, lba int64, data []byte) (sim.Time, error) {
	done, err := r.inner.Write(now, lba, data)
	if err == nil {
		r.trace.Ops = append(r.trace.Ops, Op{Kind: OpWrite, At: now, LBA: lba, Sectors: int32(len(data) / r.inner.SectorSize())})
	}
	return done, err
}

// Trim implements blockdev.Trimmer when the inner device does.
func (r *Recorder) Trim(now sim.Time, lba int64, n int64) (sim.Time, error) {
	t, ok := r.inner.(blockdev.Trimmer)
	if !ok {
		return now, errors.New("trace: inner device does not support trim")
	}
	done, err := t.Trim(now, lba, n)
	if err == nil {
		r.trace.Ops = append(r.trace.Ops, Op{Kind: OpTrim, At: now, LBA: lba, Sectors: int32(n)})
	}
	return done, err
}

var traceMagic = [8]byte{'i', 'o', 't', 'r', 'a', 'c', 'e', '1'}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed stream")

// Save serializes the trace to w.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(t.SectorSize))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(t.Ops)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [21]byte
	for _, op := range t.Ops {
		rec[0] = byte(op.Kind)
		binary.LittleEndian.PutUint64(rec[1:9], uint64(op.At))
		binary.LittleEndian.PutUint64(rec[9:17], uint64(op.LBA))
		binary.LittleEndian.PutUint32(rec[17:21], uint32(op.Sectors))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load deserializes a trace from r.
func Load(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadTrace)
	}
	t := &Trace{SectorSize: int(binary.LittleEndian.Uint32(hdr[:4]))}
	n := binary.LittleEndian.Uint64(hdr[4:12])
	if t.SectorSize <= 0 {
		return nil, fmt.Errorf("%w: sector size %d", ErrBadTrace, t.SectorSize)
	}
	var rec [21]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated op %d", ErrBadTrace, i)
		}
		op := Op{
			Kind:    Kind(rec[0]),
			At:      sim.Time(binary.LittleEndian.Uint64(rec[1:9])),
			LBA:     int64(binary.LittleEndian.Uint64(rec[9:17])),
			Sectors: int32(binary.LittleEndian.Uint32(rec[17:21])),
		}
		if op.Kind > OpTrim || op.Sectors <= 0 {
			return nil, fmt.Errorf("%w: bad op %d", ErrBadTrace, i)
		}
		t.Ops = append(t.Ops, op)
	}
	return t, nil
}

// ReplayOptions controls replay behaviour.
type ReplayOptions struct {
	// PreserveTiming issues each op no earlier than start + its original
	// inter-arrival offset (open-loop replay); otherwise ops run back to
	// back as the device completes them (closed-loop).
	PreserveTiming bool
	// Scheduler, when non-nil, is driven before every op.
	Scheduler *sim.Scheduler
	// Latency, when non-nil, records per-op latency.
	Latency *sim.LatencyRecorder
}

// ReplayResult summarizes a replay.
type ReplayResult struct {
	Ops   int64
	Bytes int64
	Start sim.Time
	End   sim.Time
}

// Replay runs the trace against dst starting at virtual time start.
func Replay(dst blockdev.Device, start sim.Time, t *Trace, opts ReplayOptions) (ReplayResult, sim.Time, error) {
	if t.SectorSize != dst.SectorSize() {
		return ReplayResult{}, start, fmt.Errorf("trace: sector size %d != device %d", t.SectorSize, dst.SectorSize())
	}
	res := ReplayResult{Start: start}
	now := start
	end := start
	var origin sim.Time
	if len(t.Ops) > 0 {
		origin = t.Ops[0].At
	}
	buf := make([]byte, 0)
	for i, op := range t.Ops {
		if opts.PreserveTiming {
			if at := start.Add(op.At.Sub(origin)); at > now {
				now = at
			}
		}
		if opts.Scheduler != nil {
			opts.Scheduler.RunUntil(now)
		}
		size := int(op.Sectors) * t.SectorSize
		if cap(buf) < size {
			buf = make([]byte, size)
		}
		buf = buf[:size]
		var done sim.Time
		var err error
		switch op.Kind {
		case OpRead:
			done, err = dst.Read(now, op.LBA, buf)
		case OpWrite:
			done, err = dst.Write(now, op.LBA, buf)
		case OpTrim:
			tr, ok := dst.(blockdev.Trimmer)
			if !ok {
				return res, end, fmt.Errorf("trace: op %d is a trim but device does not support it", i)
			}
			done, err = tr.Trim(now, op.LBA, int64(op.Sectors))
		}
		if err != nil {
			return res, end, fmt.Errorf("trace: replaying op %d (%v LBA %d): %w", i, op.Kind, op.LBA, err)
		}
		if opts.Latency != nil {
			opts.Latency.Record(done, done.Sub(now))
		}
		if done > end {
			end = done
		}
		if !opts.PreserveTiming {
			now = done
		}
		res.Ops++
		if op.Kind != OpTrim {
			res.Bytes += int64(size)
		}
	}
	res.End = end
	return res, end, nil
}
