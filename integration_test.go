package main

import (
	"bytes"
	"testing"

	"iosnap/internal/blockdev"
	"iosnap/internal/cowsim"
	"iosnap/internal/ftl"
	"iosnap/internal/harness"
	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
	"iosnap/internal/workload"
)

// Interface compliance: every storage system is a blockdev.Device.
var (
	_ blockdev.Device  = (*ftl.FTL)(nil)
	_ blockdev.Trimmer = (*ftl.FTL)(nil)
	_ blockdev.Device  = (*iosnap.FTL)(nil)
	_ blockdev.Trimmer = (*iosnap.FTL)(nil)
	_ blockdev.Device  = (*iosnap.View)(nil)
	_ blockdev.Device  = (*cowsim.Store)(nil)
)

func integNand() nand.Config {
	nc := nand.DefaultConfig()
	nc.SectorSize = 512
	nc.PagesPerSegment = 32
	nc.Segments = 48
	nc.Channels = 4
	nc.StoreData = true
	nc.ReadLatency = 2 * sim.Microsecond
	nc.ProgramLatency = 4 * sim.Microsecond
	nc.EraseLatency = 50 * sim.Microsecond
	return nc
}

func pat(ss int, lba int64, v byte) []byte {
	b := make([]byte, ss)
	for i := range b {
		b[i] = byte(lba) ^ v ^ byte(i>>3)
	}
	return b
}

// TestFullLifecycle drives the whole stack: workload-driven writes, periodic
// snapshots, background cleaning, a crash, two-pass recovery, and activation
// of every surviving snapshot — verifying content at each step.
func TestFullLifecycle(t *testing.T) {
	nc := integNand()
	nc.Segments = 24 // small enough that the churn forces real cleaning
	cfg := iosnap.DefaultConfig(nc)
	cfg.GCWindow = 5 * sim.Millisecond
	f, err := iosnap.New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := f.SectorSize()
	now := sim.Time(0)
	rng := sim.NewRNG(77)
	model := make(map[int64]byte)
	snapModels := make(map[iosnap.SnapshotID]map[int64]byte)

	const space = 200
	for phase := 0; phase < 6; phase++ {
		for i := 0; i < 150; i++ {
			f.Scheduler().RunUntil(now)
			lba := rng.Int63n(space)
			v := byte(phase*40 + i%40 + 1)
			d, err := f.Write(now, lba, pat(ss, lba, v))
			if err != nil {
				t.Fatalf("phase %d write %d: %v", phase, i, err)
			}
			model[lba] = v
			now = d
		}
		snap, d, err := f.CreateSnapshot(now)
		if err != nil {
			t.Fatal(err)
		}
		now = d
		frozen := make(map[int64]byte, len(model))
		for k, v := range model {
			frozen[k] = v
		}
		snapModels[snap.ID] = frozen
		// Keep at most 2 live snapshots; delete the oldest beyond that.
		live := f.Snapshots()
		if len(live) > 2 {
			victim := live[0].ID
			if now, err = f.DeleteSnapshot(now, victim); err != nil {
				t.Fatal(err)
			}
			delete(snapModels, victim)
		}
	}
	now = f.Scheduler().Drain(now)
	if f.Stats().GCRuns == 0 {
		t.Fatal("no background cleaning happened; test too small")
	}

	// Crash + recover.
	rec, now, err := iosnap.Recover(cfg, f.Device(), nil, now)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	buf := make([]byte, ss)
	for lba, v := range model {
		if _, err := rec.Read(now, lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pat(ss, lba, v)) {
			t.Fatalf("active LBA %d wrong after crash", lba)
		}
	}
	for id, frozen := range snapModels {
		view, d, err := rec.ActivateSync(now, id, ratelimit.WorkSleep{}, false)
		if err != nil {
			t.Fatalf("activating %d post-crash: %v", id, err)
		}
		now = d
		for lba, v := range frozen {
			if _, err := view.Read(now, lba, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, pat(ss, lba, v)) {
				t.Fatalf("snapshot %d LBA %d wrong after crash", id, lba)
			}
		}
		if _, err := view.Deactivate(now); err != nil {
			t.Fatal(err)
		}
	}
}

// TestImagePersistenceAcrossProcesses emulates iosnapctl: device state
// round-trips through a serialized image plus log recovery.
func TestImagePersistenceAcrossProcesses(t *testing.T) {
	cfg := iosnap.DefaultConfig(integNand())
	f, err := iosnap.New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := f.SectorSize()
	now := sim.Time(0)
	now, _ = f.Write(now, 3, pat(ss, 3, 1))
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	now, _ = f.Write(now, 3, pat(ss, 3, 2))

	var img bytes.Buffer
	if err := f.Device().SaveImage(&img); err != nil {
		t.Fatal(err)
	}

	// "New process": load + recover.
	dev2, err := nand.LoadImage(&img)
	if err != nil {
		t.Fatal(err)
	}
	f2, now2, err := iosnap.Recover(cfg, dev2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ss)
	if _, err := f2.Read(now2, 3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pat(ss, 3, 2)) {
		t.Fatal("active state lost through image")
	}
	view, now2, err := f2.ActivateSync(now2, snap.ID, ratelimit.WorkSleep{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := view.Read(now2, 3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pat(ss, 3, 1)) {
		t.Fatal("snapshot state lost through image")
	}
}

// TestWorkloadOverAllSystems sanity-runs the workload driver against every
// block device implementation.
func TestWorkloadOverAllSystems(t *testing.T) {
	vf, err := ftl.New(ftl.DefaultConfig(integNand()), nil)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := iosnap.New(iosnap.DefaultConfig(integNand()), nil)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := cowsim.DefaultConfig(1024)
	ccfg.SectorSize = 512
	cs, err := cowsim.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	devs := map[string]blockdev.Device{"ftl": vf, "iosnap": sf, "cowsim": cs}
	scheds := map[string]*sim.Scheduler{"ftl": vf.Scheduler(), "iosnap": sf.Scheduler(), "cowsim": nil}
	for name, dev := range devs {
		spec := workload.Spec{
			Kind: workload.Write, Pattern: workload.Zipf, ZipfS: 1.3,
			BlockSize: 512, Threads: 2, QueueDepth: 4,
			MaxOps: 2000, Seed: 4, SubmitCost: 100 * sim.Nanosecond,
		}
		res, _, err := workload.Run(dev, 0, spec, workload.Options{Scheduler: scheds[name]})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Ops != 2000 || res.MBps <= 0 {
			t.Fatalf("%s: res = %+v", name, res)
		}
	}
}

// TestExperimentsSmoke runs every registered experiment at a tiny scale —
// any structural regression in an experiment fails the unit suite, not
// just a long benchmark run.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped in -short")
	}
	rc := harness.RunConfig{Scale: 0.02}
	for _, exp := range harness.All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			report, err := exp.Run(rc)
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if report.ID != exp.ID {
				t.Fatalf("report id %q", report.ID)
			}
			if len(report.Tables) == 0 {
				t.Fatalf("%s produced no tables", exp.ID)
			}
			for _, tbl := range report.Tables {
				if len(tbl.Rows) == 0 {
					t.Fatalf("%s produced an empty table %q", exp.ID, tbl.Title)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Header) {
						t.Fatalf("%s: row width %d != header %d", exp.ID, len(row), len(tbl.Header))
					}
				}
			}
			var sink bytes.Buffer
			report.Render(&sink)
			if sink.Len() == 0 {
				t.Fatalf("%s rendered nothing", exp.ID)
			}
			sink.Reset()
			if err := report.WriteCSV(&sink); err != nil {
				t.Fatalf("%s CSV: %v", exp.ID, err)
			}
		})
	}
}

// TestVanillaAndIoSnapAgreeWithoutSnapshots runs identical workloads over
// both FTLs with zero snapshots: contents must agree sector for sector.
func TestVanillaAndIoSnapAgreeWithoutSnapshots(t *testing.T) {
	vf, err := ftl.New(ftl.DefaultConfig(integNand()), nil)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := iosnap.New(iosnap.DefaultConfig(integNand()), nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := vf.SectorSize()
	rng := sim.NewRNG(123)
	var vNow, sNow sim.Time
	space := vf.Sectors()
	if s := sf.Sectors(); s < space {
		space = s
	}
	for i := 0; i < 1200; i++ {
		lba := rng.Int63n(space)
		data := pat(ss, lba, byte(i))
		vf.Scheduler().RunUntil(vNow)
		sf.Scheduler().RunUntil(sNow)
		d1, err := vf.Write(vNow, lba, data)
		if err != nil {
			t.Fatalf("vanilla write %d: %v", i, err)
		}
		d2, err := sf.Write(sNow, lba, data)
		if err != nil {
			t.Fatalf("iosnap write %d: %v", i, err)
		}
		vNow, sNow = d1, d2
	}
	vNow = vf.Scheduler().Drain(vNow)
	sNow = sf.Scheduler().Drain(sNow)
	b1 := make([]byte, ss)
	b2 := make([]byte, ss)
	for lba := int64(0); lba < space; lba++ {
		if _, err := vf.Read(vNow, lba, b1); err != nil {
			t.Fatal(err)
		}
		if _, err := sf.Read(sNow, lba, b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("LBA %d differs between vanilla and ioSnap", lba)
		}
	}
}

// TestVerifiedWorkloadOverIoSnap runs stamped writes followed by verified
// reads across heavy cleaning on ioSnap with snapshots present — end-to-end
// data-integrity of the whole stack under churn.
func TestVerifiedWorkloadOverIoSnap(t *testing.T) {
	nc := integNand()
	nc.Segments = 32
	cfg := iosnap.DefaultConfig(nc)
	cfg.GCWindow = 5 * sim.Millisecond
	f, err := iosnap.New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := workload.NewVerifier()
	region := int64(120)
	// Several stamped write passes with snapshots between them.
	for pass := 0; pass < 4; pass++ {
		spec := workload.Spec{
			Kind: workload.Write, Pattern: workload.Random,
			BlockSize: 512, Threads: 1, QueueDepth: 1,
			MaxOps: 400, Seed: uint64(pass + 1), RangeHi: region,
		}
		if _, _, err := workload.Run(f, 0, spec, workload.Options{Scheduler: f.Scheduler(), Verify: v}); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if _, _, err := f.CreateSnapshot(0); err != nil {
			t.Fatalf("pass %d snapshot: %v", pass, err)
		}
		if f.Tree().Live() > 1 {
			oldest := f.Snapshots()[0]
			if _, err := f.DeleteSnapshot(0, oldest.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("no cleaning; integrity test is weak")
	}
	rspec := workload.Spec{
		Kind: workload.Read, Pattern: workload.Random,
		BlockSize: 512, Threads: 1, QueueDepth: 1,
		MaxOps: 1500, Seed: 99, RangeHi: region,
	}
	if _, _, err := workload.Run(f, 0, rspec, workload.Options{Scheduler: f.Scheduler(), Verify: v}); err != nil {
		t.Fatalf("verified reads: %v", err)
	}
	if v.Checked < 1000 {
		t.Fatalf("only %d sectors verified", v.Checked)
	}
}
