#!/bin/sh
# End-to-end smoke test of the storage-service front-end: build iosnapd
# and iosnapctl, start a real daemon on loopback, drive writes and
# snapshots over the wire, shut down gracefully, then restart and verify
# the data and the snapshot survived the image round-trip.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$WORK/iosnapd" ./cmd/iosnapd
go build -o "$WORK/iosnapctl" ./cmd/iosnapctl

ADDR=127.0.0.1:7648
CTL="$WORK/iosnapctl -remote $ADDR"
IMG="$WORK/dev.img"

start_daemon() {
    "$WORK/iosnapd" -image "$IMG" -addr "$ADDR" -shards 2 -megabytes 16 &
    DAEMON_PID=$!
    # Poll until the server answers (or the daemon died).
    i=0
    until $CTL ping 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "server never came up" >&2
            exit 1
        fi
        kill -0 "$DAEMON_PID" 2>/dev/null || { echo "daemon exited early" >&2; exit 1; }
        sleep 0.2
    done
}

wait_daemon() {
    wait "$DAEMON_PID"
    DAEMON_PID=""
}

echo "== first start: format, write, snapshot"
start_daemon
$CTL write -lba 0 -text "smoke v1"
$CTL write -lba 4097 -text "far sector"   # lands on the second shard
$CTL snap-create | grep "created snapshot 1"
$CTL write -lba 0 -text "smoke v2"
$CTL read -lba 0 | grep "smoke v2"
$CTL snap-read -id 1 -lba 0 | grep "smoke v1"
$CTL stats | grep "shards:             2"
$CTL stats | grep "shard skew:"
$CTL stats | grep "view cache:"

echo "== graceful shutdown persists the shard images"
$CTL shutdown
wait_daemon
for i in 0 1; do
    [ -s "$IMG.shard$i" ] || { echo "missing shard image $i" >&2; exit 1; }
done
[ ! -e "$IMG.shard0.tmp" ] || { echo "temp file left behind" >&2; exit 1; }

echo "== second start: remount and verify"
start_daemon
$CTL read -lba 0 | grep "smoke v2"
$CTL read -lba 4097 | grep "far sector"
$CTL snap-read -id 1 -lba 0 | grep "smoke v1"

echo "== pipelined load: depth-8 v2 pipeline and serial v1 baseline"
$CTL loadgen -conns 2 -depth 8 -ops 400 -writepct 20 -snappct 5 | grep "proto:       v2, 2 conns x depth 8"
$CTL loadgen -conns 1 -depth 1 -ops 100 -v1 | grep "proto:       v1, 1 conns x depth 1"
$CTL snap-read -id 1 -lba 0 | grep "smoke v1"   # snapshot 1 froze before the load ran

$CTL shutdown
wait_daemon

echo "server smoke: all green"
