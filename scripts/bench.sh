#!/bin/sh
# GC victim-selection benchmark: runs the incremental-vs-scratch selection
# benchmarks plus the GC-heavy many-snapshot workload, and writes the
# results (with the incremental/scratch speedup ratio) to BENCH_gc.json at
# the repository root. No dependencies beyond the go toolchain and awk.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_gc.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench (victim selection + GC-heavy workload)"
go test ./internal/iosnap/ -run '^$' \
	-bench 'BenchmarkVictimSelect$|BenchmarkVictimSelectScratch$|BenchmarkGCHeavySnapshotWorkload$' \
	-benchtime=1000x | tee "$raw"

awk '
/^BenchmarkVictimSelect / || /^BenchmarkVictimSelect\t/           { sel = $3 }
/^BenchmarkVictimSelectScratch/                                    { scr = $3 }
/^BenchmarkGCHeavySnapshotWorkload/                                { wl  = $3 }
END {
	if (sel == "" || scr == "" || wl == "") {
		print "bench.sh: missing benchmark output" > "/dev/stderr"
		exit 1
	}
	speedup = scr / sel
	printf "{\n"
	printf "  \"benchmark\": \"gc-victim-selection\",\n"
	printf "  \"config\": \"64 segments x 64 pages, 64 live snapshots\",\n"
	printf "  \"victim_select_incremental_ns_op\": %.2f,\n", sel
	printf "  \"victim_select_scratch_ns_op\": %.2f,\n", scr
	printf "  \"gc_heavy_workload_ns_op\": %.2f,\n", wl
	printf "  \"speedup\": %.1f\n", speedup
	printf "}\n"
}' "$raw" > "$out"

echo "== wrote $out"
cat "$out"

speedup=$(awk -F'[:,]' '/"speedup"/ { print $2 }' "$out")
awk "BEGIN { exit !($speedup >= 5) }" || {
	echo "bench.sh: speedup $speedup below the 5x acceptance floor" >&2
	exit 1
}

# Recovery benchmark: tail-bounded (checkpoint) mount vs the vanilla full
# header scan on the same image. The reported metrics are deterministic
# virtual quantities (header pages scanned, virtual mount time), so one
# iteration suffices.
rout=BENCH_recovery.json

echo "== go test -bench (tail-bounded vs full-scan recovery)"
go test ./internal/iosnap/ -run '^$' \
	-bench 'BenchmarkRecoverTailBounded$|BenchmarkRecoverFullScan$' \
	-benchtime=1x | tee "$raw"

awk '
function metric(unit,   i) {
	for (i = 1; i <= NF; i++) {
		if ($i == unit) {
			return $(i - 1)
		}
	}
	return ""
}
/^BenchmarkRecoverTailBounded/ { tp = metric("hdrpages/op"); tt = metric("vus/op") }
/^BenchmarkRecoverFullScan/    { fp = metric("hdrpages/op"); ft = metric("vus/op") }
END {
	if (tp == "" || fp == "" || tt == "" || ft == "") {
		print "bench.sh: missing recovery benchmark output" > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"benchmark\": \"tail-bounded-recovery\",\n"
	printf "  \"config\": \"128 segments x 32 pages, 2500 writes, 2 snapshots, clean close\",\n"
	printf "  \"tail_header_pages\": %.0f,\n", tp
	printf "  \"full_scan_header_pages\": %.0f,\n", fp
	printf "  \"tail_virtual_us\": %.1f,\n", tt
	printf "  \"full_scan_virtual_us\": %.1f,\n", ft
	printf "  \"header_page_speedup\": %.1f,\n", fp / tp
	printf "  \"virtual_time_speedup\": %.1f\n", ft / tt
	printf "}\n"
}' "$raw" > "$rout"

echo "== wrote $rout"
cat "$rout"

rspeedup=$(awk -F'[:,]' '/"header_page_speedup"/ { print $2 }' "$rout")
awk "BEGIN { exit !($rspeedup >= 10) }" || {
	echo "bench.sh: recovery header-page speedup $rspeedup below the 10x acceptance floor" >&2
	exit 1
}

# Batched data path benchmark: host ns/op of the batched scatter-gather
# path vs the per-sector reference implementation, 256-sector (1M) ops on
# both FTLs. Virtual bandwidth is identical by construction (the equivalence
# tests assert it); the JSON records it once per op kind as a sanity figure.
dout=BENCH_datapath.json

echo "== go test -bench (batched vs reference data path, 1M ops)"
go test . -run '^$' \
	-bench 'BenchmarkDataPath(Batched|Reference)(Write|Read)/(ftl|iosnap)/1M' \
	-benchtime=4000x | tee "$raw"

awk '
function metric(unit,   i) {
	for (i = 1; i <= NF; i++) {
		if ($i == unit) {
			return $(i - 1)
		}
	}
	return ""
}
$1 ~ /^BenchmarkDataPathBatchedWrite\/ftl\/1M/      { bwf = $3; wgb = metric("virtual-GB/s") }
$1 ~ /^BenchmarkDataPathBatchedWrite\/iosnap\/1M/   { bwi = $3 }
$1 ~ /^BenchmarkDataPathReferenceWrite\/ftl\/1M/    { rwf = $3 }
$1 ~ /^BenchmarkDataPathReferenceWrite\/iosnap\/1M/ { rwi = $3 }
$1 ~ /^BenchmarkDataPathBatchedRead\/ftl\/1M/       { brf = $3; rgb = metric("virtual-GB/s") }
$1 ~ /^BenchmarkDataPathBatchedRead\/iosnap\/1M/    { bri = $3 }
$1 ~ /^BenchmarkDataPathReferenceRead\/ftl\/1M/     { rrf = $3 }
$1 ~ /^BenchmarkDataPathReferenceRead\/iosnap\/1M/  { rri = $3 }
END {
	if (bwf == "" || bwi == "" || rwf == "" || rwi == "" ||
	    brf == "" || bri == "" || rrf == "" || rri == "") {
		print "bench.sh: missing data path benchmark output" > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"benchmark\": \"batched-data-path\",\n"
	printf "  \"config\": \"4K sectors, 1024 pages/segment, 128 segments, 256-sector ops\",\n"
	printf "  \"seq_write_1m_batched_ns_op\": {\"ftl\": %.0f, \"iosnap\": %.0f},\n", bwf, bwi
	printf "  \"seq_write_1m_reference_ns_op\": {\"ftl\": %.0f, \"iosnap\": %.0f},\n", rwf, rwi
	printf "  \"rand_read_1m_batched_ns_op\": {\"ftl\": %.0f, \"iosnap\": %.0f},\n", brf, bri
	printf "  \"rand_read_1m_reference_ns_op\": {\"ftl\": %.0f, \"iosnap\": %.0f},\n", rrf, rri
	printf "  \"seq_write_virtual_gb_s\": %.3f,\n", wgb
	printf "  \"rand_read_virtual_gb_s\": %.3f,\n", rgb
	printf "  \"write_speedup\": {\"ftl\": %.2f, \"iosnap\": %.2f},\n", rwf / bwf, rwi / bwi
	printf "  \"read_speedup\": {\"ftl\": %.2f, \"iosnap\": %.2f}\n", rrf / brf, rri / bri
	printf "}\n"
}' "$raw" > "$dout"

echo "== wrote $dout"
cat "$dout"

wsf=$(awk -F'[:,{}]+' '/"write_speedup"/ { print $4 }' "$dout")
wsi=$(awk -F'[:,{}]+' '/"write_speedup"/ { print $6 }' "$dout")
rsf=$(awk -F'[:,{}]+' '/"read_speedup"/ { print $4 }' "$dout")
rsi=$(awk -F'[:,{}]+' '/"read_speedup"/ { print $6 }' "$dout")
awk "BEGIN { exit !($wsf >= 2 && $wsi >= 2) }" || {
	echo "bench.sh: seq-write speedup ftl=$wsf iosnap=$wsi below the 2x acceptance floor" >&2
	exit 1
}
awk "BEGIN { exit !($rsf >= 2 && $rsi >= 2) }" || {
	echo "bench.sh: rand-read speedup ftl=$rsf iosnap=$rsi below the 2x acceptance floor" >&2
	exit 1
}

# Sharded service-mode benchmark: the same seeded client workload at 1, 4,
# and 16 shards. The gated figure is virtual-time throughput (user bytes
# over the virtual makespan) — a function of the seed and geometry, with
# only queue-arrival interleaving adding percent-level jitter — so the 2x
# scaling floor (measured ~5.7x) holds even on a 1-core runner.
sout=BENCH_shard.json

echo "== go test -race (service-mode storm)"
go test -race ./internal/shard/ -run 'TestServiceStorm$'

echo "== go test -bench (sharded service mode, 1/4/16 shards)"
go test ./internal/shard/ -run '^$' \
	-bench 'BenchmarkShardService/shards(1|4|16)$' \
	-benchtime=1x | tee "$raw"

awk '
function metric(unit,   i) {
	for (i = 1; i <= NF; i++) {
		if ($i == unit) {
			return $(i - 1)
		}
	}
	return ""
}
$1 ~ /^BenchmarkShardService\/shards1(-[0-9]+)?$/  { v1 = metric("virtual-MB/s") }
$1 ~ /^BenchmarkShardService\/shards4(-[0-9]+)?$/  { v4 = metric("virtual-MB/s") }
$1 ~ /^BenchmarkShardService\/shards16(-[0-9]+)?$/ { v16 = metric("virtual-MB/s") }
END {
	if (v1 == "" || v4 == "" || v16 == "") {
		print "bench.sh: missing shard benchmark output" > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"benchmark\": \"sharded-service-mode\",\n"
	printf "  \"config\": \"256 segments x 32 pages, 16 clients x 150 ops, 16-sector runs, seed 1\",\n"
	printf "  \"virtual_mb_s\": {\"shards1\": %.1f, \"shards4\": %.1f, \"shards16\": %.1f},\n", v1, v4, v16
	printf "  \"scaling_16_vs_1\": %.2f\n", v16 / v1
	printf "}\n"
}' "$raw" > "$sout"

echo "== wrote $sout"
cat "$sout"

scaling=$(awk -F'[:,]' '/"scaling_16_vs_1"/ { print $2 }' "$sout")
awk "BEGIN { exit !($scaling >= 2) }" || {
	echo "bench.sh: 16-shard scaling $scaling below the 2x acceptance floor" >&2
	exit 1
}

# Replication benchmark: incremental (delta against the previous committed
# generation) vs full-image transfer of the same snapshot — sectors and
# wire bytes shipped plus virtual transfer time. All metrics are
# deterministic virtual quantities, so one iteration suffices.
xout=BENCH_export.json

echo "== go test -bench (incremental vs full replication)"
go test ./internal/iosnap/ -run '^$' \
	-bench 'BenchmarkReplicateFull$|BenchmarkReplicateIncremental$' \
	-benchtime=1x | tee "$raw"

awk '
function metric(unit,   i) {
	for (i = 1; i <= NF; i++) {
		if ($i == unit) {
			return $(i - 1)
		}
	}
	return ""
}
/^BenchmarkReplicateFull/        { fs = metric("sectors/op"); fb = metric("wirebytes/op"); ft = metric("vus/op") }
/^BenchmarkReplicateIncremental/ { is = metric("sectors/op"); ib = metric("wirebytes/op"); it = metric("vus/op") }
END {
	if (fs == "" || fb == "" || ft == "" || is == "" || ib == "" || it == "") {
		print "bench.sh: missing replication benchmark output" > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"benchmark\": \"incremental-replication\",\n"
	printf "  \"config\": \"128 segments x 32 pages, 600-sector image, 10%% overwrite + 10-sector trim between generations\",\n"
	printf "  \"full_sectors\": %.0f,\n", fs
	printf "  \"full_wire_bytes\": %.0f,\n", fb
	printf "  \"full_virtual_us\": %.1f,\n", ft
	printf "  \"incremental_sectors\": %.0f,\n", is
	printf "  \"incremental_wire_bytes\": %.0f,\n", ib
	printf "  \"incremental_virtual_us\": %.1f,\n", it
	printf "  \"wire_bytes_advantage\": %.1f,\n", fb / ib
	printf "  \"virtual_time_advantage\": %.1f\n", ft / it
	printf "}\n"
}' "$raw" > "$xout"

echo "== wrote $xout"
cat "$xout"

xadv=$(awk -F'[:,]' '/"wire_bytes_advantage"/ { print $2 }' "$xout")
tadv=$(awk -F'[:,]' '/"virtual_time_advantage"/ { print $2 }' "$xout")
awk "BEGIN { exit !($xadv >= 4) }" || {
	echo "bench.sh: incremental wire-bytes advantage $xadv below the 4x acceptance floor" >&2
	exit 1
}
awk "BEGIN { exit !($tadv >= 1.5) }" || {
	echo "bench.sh: incremental virtual-time advantage $tadv below the 1.5x acceptance floor" >&2
	exit 1
}

# Paged mapping table benchmark: hit rate vs foreground latency at three
# translation-page cache sizes on a TB-class device, against the in-RAM map
# baseline. The -race thrash torture runs first: a tiny cache under the
# snapshot-churn storm, the workload most likely to expose cache/GC races.
mout=BENCH_mapcache.json

echo "== go test -race (map-thrash torture)"
go test -race ./internal/iosnap/ -run 'TestTortureMapThrash'

echo "== go test -bench (paged map cache sweep, TB-class geometry)"
go test . -run '^$' \
	-bench 'BenchmarkMapCache/(inram|cache128|cache512|cache2048)$' \
	-benchtime=1x | tee "$raw"

awk '
function metric(unit,   i) {
	for (i = 1; i <= NF; i++) {
		if ($i == unit) {
			return $(i - 1)
		}
	}
	return ""
}
$1 ~ /^BenchmarkMapCache\/inram/     { il = metric("vus/op"); ir = metric("residentB") }
$1 ~ /^BenchmarkMapCache\/cache128/  { h1 = metric("hitrate"); l1 = metric("vus/op"); r1 = metric("residentB") }
$1 ~ /^BenchmarkMapCache\/cache512/  { h2 = metric("hitrate"); l2 = metric("vus/op"); r2 = metric("residentB") }
$1 ~ /^BenchmarkMapCache\/cache2048/ { h3 = metric("hitrate"); l3 = metric("vus/op"); r3 = metric("residentB") }
END {
	if (il == "" || h1 == "" || h2 == "" || h3 == "" || l1 == "" || l2 == "" || l3 == "") {
		print "bench.sh: missing map cache benchmark output" > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"benchmark\": \"paged-map-cache\",\n"
	printf "  \"config\": \"1TB device (4K pages, 256Ki segments), 64K mapped sectors, 95/10 hot-cold reads\",\n"
	printf "  \"inram_vus_op\": %.2f,\n", il
	printf "  \"inram_resident_bytes\": %.0f,\n", ir
	printf "  \"cache128\":  {\"hit_rate\": %.4f, \"vus_op\": %.2f, \"resident_bytes\": %.0f, \"latency_ratio\": %.2f},\n", h1, l1, r1, l1 / il
	printf "  \"cache512\":  {\"hit_rate\": %.4f, \"vus_op\": %.2f, \"resident_bytes\": %.0f, \"latency_ratio\": %.2f},\n", h2, l2, r2, l2 / il
	printf "  \"cache2048\": {\"hit_rate\": %.4f, \"vus_op\": %.2f, \"resident_bytes\": %.0f, \"latency_ratio\": %.2f}\n", h3, l3, r3, l3 / il
	printf "}\n"
}' "$raw" > "$mout"

echo "== wrote $mout"
cat "$mout"

mhit=$(awk -F'[:,{}]+' '/"cache2048"/ { print $4 }' "$mout")
mratio=$(awk -F'[:,{}]+' '/"cache2048"/ { print $10 }' "$mout")
awk "BEGIN { exit !($mhit >= 0.9) }" || {
	echo "bench.sh: cache2048 hit rate $mhit below the 0.9 acceptance floor" >&2
	exit 1
}
awk "BEGIN { exit !($mratio <= 2) }" || {
	echo "bench.sh: cache2048 latency ratio $mratio above the 2x acceptance ceiling" >&2
	exit 1
}

# Wire protocol benchmark: wall-clock ops/s over real loopback TCP —
# serial v1 (one request per round-trip, the PR 9 protocol) vs the tagged
# v2 pipeline at depth 16, identical geometry and read mix, plus the
# snap-read hot loop whose hitrate proves the server-side view cache
# served it (no per-request activate/deactivate). The -race storm runs
# first: tagged clients with deep pipelines, snapshot churn, and a
# shutdown racing in-flight pipelines.
wout=BENCH_wire.json

echo "== go test -race (pipelined wire storm + shutdown mid-pipeline)"
go test -race ./internal/srv/ -run 'TestWirePipelinedStorm$|TestWireShutdownMidPipeline$'

echo "== go test -bench (serial v1 vs pipelined v2 wire, wall clock)"
go test ./internal/srv/ -run '^$' \
	-bench 'BenchmarkWireSerialV1$|BenchmarkWirePipelined16$|BenchmarkWireSnapRead16$' \
	-benchtime=20000x | tee "$raw"

awk '
function metric(unit,   i) {
	for (i = 1; i <= NF; i++) {
		if ($i == unit) {
			return $(i - 1)
		}
	}
	return ""
}
/^BenchmarkWireSerialV1/    { v1 = metric("ops/s") }
/^BenchmarkWirePipelined16/ { v2 = metric("ops/s") }
/^BenchmarkWireSnapRead16/  { sr = metric("ops/s"); hr = metric("hitrate") }
END {
	if (v1 == "" || v2 == "" || sr == "" || hr == "") {
		print "bench.sh: missing wire benchmark output" > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"benchmark\": \"wire-protocol-pipelining\",\n"
	printf "  \"config\": \"loopback TCP, 2 conns, 1-sector reads, 512B sectors, 4 shards\",\n"
	printf "  \"serial_v1_ops_s\": %.0f,\n", v1
	printf "  \"pipelined16_ops_s\": %.0f,\n", v2
	printf "  \"snapread16_ops_s\": %.0f,\n", sr
	printf "  \"snapread_view_cache_hitrate\": %.4f,\n", hr
	printf "  \"pipelined_speedup\": %.2f\n", v2 / v1
	printf "}\n"
}' "$raw" > "$wout"

echo "== wrote $wout"
cat "$wout"

wspeed=$(awk -F'[:,]' '/"pipelined_speedup"/ { print $2 }' "$wout")
whit=$(awk -F'[:,]' '/"snapread_view_cache_hitrate"/ { print $2 }' "$wout")
awk "BEGIN { exit !($wspeed >= 3) }" || {
	echo "bench.sh: pipelined wire speedup $wspeed below the 3x acceptance floor" >&2
	exit 1
}
awk "BEGIN { exit !($whit >= 0.9) }" || {
	echo "bench.sh: snap-read view-cache hit rate $whit below the 0.9 acceptance floor" >&2
	exit 1
}
