#!/bin/sh
# GC victim-selection benchmark: runs the incremental-vs-scratch selection
# benchmarks plus the GC-heavy many-snapshot workload, and writes the
# results (with the incremental/scratch speedup ratio) to BENCH_gc.json at
# the repository root. No dependencies beyond the go toolchain and awk.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_gc.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench (victim selection + GC-heavy workload)"
go test ./internal/iosnap/ -run '^$' \
	-bench 'BenchmarkVictimSelect$|BenchmarkVictimSelectScratch$|BenchmarkGCHeavySnapshotWorkload$' \
	-benchtime=1000x | tee "$raw"

awk '
/^BenchmarkVictimSelect / || /^BenchmarkVictimSelect\t/           { sel = $3 }
/^BenchmarkVictimSelectScratch/                                    { scr = $3 }
/^BenchmarkGCHeavySnapshotWorkload/                                { wl  = $3 }
END {
	if (sel == "" || scr == "" || wl == "") {
		print "bench.sh: missing benchmark output" > "/dev/stderr"
		exit 1
	}
	speedup = scr / sel
	printf "{\n"
	printf "  \"benchmark\": \"gc-victim-selection\",\n"
	printf "  \"config\": \"64 segments x 64 pages, 64 live snapshots\",\n"
	printf "  \"victim_select_incremental_ns_op\": %.2f,\n", sel
	printf "  \"victim_select_scratch_ns_op\": %.2f,\n", scr
	printf "  \"gc_heavy_workload_ns_op\": %.2f,\n", wl
	printf "  \"speedup\": %.1f\n", speedup
	printf "}\n"
}' "$raw" > "$out"

echo "== wrote $out"
cat "$out"

speedup=$(awk -F'[:,]' '/"speedup"/ { print $2 }' "$out")
awk "BEGIN { exit !($speedup >= 5) }" || {
	echo "bench.sh: speedup $speedup below the 5x acceptance floor" >&2
	exit 1
}
