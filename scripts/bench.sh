#!/bin/sh
# GC victim-selection benchmark: runs the incremental-vs-scratch selection
# benchmarks plus the GC-heavy many-snapshot workload, and writes the
# results (with the incremental/scratch speedup ratio) to BENCH_gc.json at
# the repository root. No dependencies beyond the go toolchain and awk.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_gc.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench (victim selection + GC-heavy workload)"
go test ./internal/iosnap/ -run '^$' \
	-bench 'BenchmarkVictimSelect$|BenchmarkVictimSelectScratch$|BenchmarkGCHeavySnapshotWorkload$' \
	-benchtime=1000x | tee "$raw"

awk '
/^BenchmarkVictimSelect / || /^BenchmarkVictimSelect\t/           { sel = $3 }
/^BenchmarkVictimSelectScratch/                                    { scr = $3 }
/^BenchmarkGCHeavySnapshotWorkload/                                { wl  = $3 }
END {
	if (sel == "" || scr == "" || wl == "") {
		print "bench.sh: missing benchmark output" > "/dev/stderr"
		exit 1
	}
	speedup = scr / sel
	printf "{\n"
	printf "  \"benchmark\": \"gc-victim-selection\",\n"
	printf "  \"config\": \"64 segments x 64 pages, 64 live snapshots\",\n"
	printf "  \"victim_select_incremental_ns_op\": %.2f,\n", sel
	printf "  \"victim_select_scratch_ns_op\": %.2f,\n", scr
	printf "  \"gc_heavy_workload_ns_op\": %.2f,\n", wl
	printf "  \"speedup\": %.1f\n", speedup
	printf "}\n"
}' "$raw" > "$out"

echo "== wrote $out"
cat "$out"

speedup=$(awk -F'[:,]' '/"speedup"/ { print $2 }' "$out")
awk "BEGIN { exit !($speedup >= 5) }" || {
	echo "bench.sh: speedup $speedup below the 5x acceptance floor" >&2
	exit 1
}

# Recovery benchmark: tail-bounded (checkpoint) mount vs the vanilla full
# header scan on the same image. The reported metrics are deterministic
# virtual quantities (header pages scanned, virtual mount time), so one
# iteration suffices.
rout=BENCH_recovery.json

echo "== go test -bench (tail-bounded vs full-scan recovery)"
go test ./internal/iosnap/ -run '^$' \
	-bench 'BenchmarkRecoverTailBounded$|BenchmarkRecoverFullScan$' \
	-benchtime=1x | tee "$raw"

awk '
function metric(unit,   i) {
	for (i = 1; i <= NF; i++) {
		if ($i == unit) {
			return $(i - 1)
		}
	}
	return ""
}
/^BenchmarkRecoverTailBounded/ { tp = metric("hdrpages/op"); tt = metric("vus/op") }
/^BenchmarkRecoverFullScan/    { fp = metric("hdrpages/op"); ft = metric("vus/op") }
END {
	if (tp == "" || fp == "" || tt == "" || ft == "") {
		print "bench.sh: missing recovery benchmark output" > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"benchmark\": \"tail-bounded-recovery\",\n"
	printf "  \"config\": \"128 segments x 32 pages, 2500 writes, 2 snapshots, clean close\",\n"
	printf "  \"tail_header_pages\": %.0f,\n", tp
	printf "  \"full_scan_header_pages\": %.0f,\n", fp
	printf "  \"tail_virtual_us\": %.1f,\n", tt
	printf "  \"full_scan_virtual_us\": %.1f,\n", ft
	printf "  \"header_page_speedup\": %.1f,\n", fp / tp
	printf "  \"virtual_time_speedup\": %.1f\n", ft / tt
	printf "}\n"
}' "$raw" > "$rout"

echo "== wrote $rout"
cat "$rout"

rspeedup=$(awk -F'[:,]' '/"header_page_speedup"/ { print $2 }' "$rout")
awk "BEGIN { exit !($rspeedup >= 10) }" || {
	echo "bench.sh: recovery header-page speedup $rspeedup below the 10x acceptance floor" >&2
	exit 1
}
