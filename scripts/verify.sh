#!/bin/sh
# Tier-1 verification: build, vet, tests, and the race detector.
# Run from the repository root (or anywhere inside it).
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "verify: all green"
