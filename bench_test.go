// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (§6) via the experiment harness, plus ablation benches
// for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment bench reports headline metrics via b.ReportMetric; the
// full rows/series print through `go run ./cmd/benchrunner`.
package main

import (
	"strconv"
	"testing"

	"iosnap/internal/bitmap"
	"iosnap/internal/ftlmap"
	"iosnap/internal/harness"
	"iosnap/internal/iosnap"
	"iosnap/internal/nand"
	"iosnap/internal/ratelimit"
	"iosnap/internal/sim"
	"iosnap/internal/workload"
)

// benchScale keeps experiment benches quick; benchrunner uses scale 1.0.
const benchScale = 0.1

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := harness.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	rc := harness.RunConfig{Scale: benchScale}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(rc); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (regular ops, vanilla vs ioSnap).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkCreateDelete regenerates §6.2.1 (snapshot create/delete cost).
func BenchmarkCreateDelete(b *testing.B) { runExperiment(b, "createdelete") }

// BenchmarkFig7 regenerates Figure 7 (creation impact + validity CoW).
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (activation latency).
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkTable3 regenerates Table 3 (activation memory overheads).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig9 regenerates Figure 9 (reads during rate-limited activation).
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkTable4 regenerates Table 4 (segment cleaning overheads).
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig10 regenerates Figure 10 (cleaner pacing policies).
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11 (create impact vs Btrfs-like).
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12 (sustained bandwidth vs Btrfs-like).
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

// ---- Core-operation microbenchmarks (host CPU cost of the data path). ----

func benchNand() nand.Config {
	nc := nand.DefaultConfig()
	nc.SectorSize = 4096
	nc.PagesPerSegment = 1024
	nc.Segments = 128
	return nc
}

// BenchmarkWritePath measures the Go-side cost of one ioSnap 4K write.
func BenchmarkWritePath(b *testing.B) {
	f, err := iosnap.New(iosnap.DefaultConfig(benchNand()), nil)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	rng := sim.NewRNG(1)
	now := sim.Time(0)
	space := f.Sectors() / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Scheduler().RunUntil(now)
		d, err := f.Write(now, rng.Int63n(space), buf)
		if err != nil {
			b.Fatal(err)
		}
		now = d
	}
}

// BenchmarkReadPath measures the Go-side cost of one ioSnap 4K read.
func BenchmarkReadPath(b *testing.B) {
	f, err := iosnap.New(iosnap.DefaultConfig(benchNand()), nil)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	now, err := workload.Fill(f, 0, 128<<10, 0, 4096, f.Scheduler())
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Read(now, rng.Int63n(4096), buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotCreate measures snapshot creation cost (host side).
// The FTL is re-created every 128 snapshots so a long benchtime doesn't
// accumulate an unrealistic number of live epochs.
func BenchmarkSnapshotCreate(b *testing.B) {
	var f *iosnap.FTL
	now := sim.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%128 == 0 {
			b.StopTimer()
			var err error
			f, err = iosnap.New(iosnap.DefaultConfig(benchNand()), nil)
			if err != nil {
				b.Fatal(err)
			}
			now = 0
			b.StartTimer()
		}
		_, d, err := f.CreateSnapshot(now)
		if err != nil {
			b.Fatal(err)
		}
		now = d
	}
}

// BenchmarkActivation measures end-to-end activation of a 64 MB snapshot.
func BenchmarkActivation(b *testing.B) {
	f, err := iosnap.New(iosnap.DefaultConfig(benchNand()), nil)
	if err != nil {
		b.Fatal(err)
	}
	spec := workload.Spec{
		Kind: workload.Write, Pattern: workload.Random,
		BlockSize: 4096, Threads: 2, QueueDepth: 16,
		TotalBytes: 64 << 20, Seed: 1, SubmitCost: sim.Microsecond,
	}
	_, now, err := workload.Run(f, 0, spec, workload.Options{Scheduler: f.Scheduler()})
	if err != nil {
		b.Fatal(err)
	}
	snap, now, err := f.CreateSnapshot(now)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view, d, err := f.ActivateSync(now, snap.ID, ratelimit.WorkSleep{}, false)
		if err != nil {
			b.Fatal(err)
		}
		now = d
		if _, err := view.Deactivate(now); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benches (design choices from DESIGN.md §5). ----

// BenchmarkAblationBitmapCoW compares the paper's CoW validity maps with
// the naive full-copy-per-snapshot design it rejects (§5.4.1). Metrics:
// bytes of bitmap memory per snapshot.
func BenchmarkAblationBitmapCoW(b *testing.B) {
	// The paper's regime: the bitmap covers the whole device (2 TB there),
	// while writes between snapshots touch a small region (3 GB). The naive
	// design copies the whole bitmap per snapshot; CoW copies only the
	// touched pages.
	const nBits = 1 << 26 // 64M blocks = a 256 GB device at 4K
	const region = nBits / 64
	const snapshots = 16
	const touches = 4096 // blocks overwritten between snapshots

	b.Run("cow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := bitmap.NewStore(nBits, 0)
			s.CreateEpoch(1, bitmap.NoParent)
			rng := sim.NewRNG(7)
			cur := bitmap.Epoch(1)
			for sn := 0; sn < snapshots; sn++ {
				for t := 0; t < touches; t++ {
					s.Set(cur, rng.Int63n(region))
				}
				next := cur + 1
				s.CreateEpoch(next, cur)
				cur = next
			}
			b.ReportMetric(float64(s.MemoryBytes())/snapshots, "B/snapshot")
		}
	})
	b.Run("fullcopy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rng := sim.NewRNG(7)
			var maps []*bitmap.Bitmap
			cur := bitmap.New(nBits)
			var bytes int64
			for sn := 0; sn < snapshots; sn++ {
				for t := 0; t < touches; t++ {
					cur.Set(rng.Int63n(region))
				}
				frozen := cur.Clone() // the naive design: full copy per snapshot
				maps = append(maps, frozen)
				bytes += nBits / 8
			}
			_ = maps
			b.ReportMetric(float64(bytes)/snapshots, "B/snapshot")
		}
	})
}

// BenchmarkAblationBulkLoad quantifies the Table 3 effect: bulk-loaded
// trees vs organically grown trees with identical contents.
func BenchmarkAblationBulkLoad(b *testing.B) {
	const n = 1 << 18
	rng := sim.NewRNG(3)
	perm := rng.Perm(n)
	b.Run("grown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := ftlmap.New()
			for _, p := range perm {
				tr.Insert(uint64(p), uint64(p))
			}
			b.ReportMetric(float64(tr.MemoryBytes()), "B")
		}
	})
	b.Run("bulkloaded", func(b *testing.B) {
		entries := make([]ftlmap.Entry, n)
		for i := range entries {
			entries[i] = ftlmap.Entry{Key: uint64(i), Val: uint64(i)}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := ftlmap.BulkLoad(entries, 1.0)
			b.ReportMetric(float64(tr.MemoryBytes()), "B")
		}
	})
}

// BenchmarkAblationEpochSegregation measures epoch intermixing (mean
// epoch-runs per segment; lower = better co-location) with and without the
// §5.4.2 segregation policy.
func BenchmarkAblationEpochSegregation(b *testing.B) {
	for _, segregate := range []bool{false, true} {
		name := "mixed"
		if segregate {
			name = "segregated"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nc := benchNand()
				nc.PagesPerSegment = 256
				nc.Segments = 64
				cfg := iosnap.DefaultConfig(nc)
				cfg.EpochSegregation = segregate
				f, err := iosnap.New(cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				now := sim.Time(0)
				rng := sim.NewRNG(5)
				buf := make([]byte, 4096)
				space := f.Sectors() / 4
				for s := 0; s < 4; s++ {
					for w := 0; w < int(space)/2; w++ {
						f.Scheduler().RunUntil(now)
						d, err := f.Write(now, rng.Int63n(space), buf)
						if err != nil {
							b.Fatal(err)
						}
						now = d
					}
					if s < 3 {
						_, d, err := f.CreateSnapshot(now)
						if err != nil {
							b.Fatal(err)
						}
						now = d
					}
				}
				f.Scheduler().Drain(now)
				total, nseg := 0, 0
				for seg := 0; seg < nc.Segments; seg++ {
					if f.Device().ProgrammedInSegment(seg) > 0 {
						total += f.SegmentEpochRuns(seg)
						nseg++
					}
				}
				b.ReportMetric(float64(total)/float64(nseg), "epoch-runs/segment")
			}
		})
	}
}

// BenchmarkMergeRange measures the cleaner's validity merge (the Table 4
// overhead) across epoch counts.
func BenchmarkMergeRange(b *testing.B) {
	for _, epochs := range []int{1, 4, 16} {
		b.Run("epochs-"+strconv.Itoa(epochs), func(b *testing.B) {
			s := bitmap.NewStore(1<<20, 0)
			s.CreateEpoch(1, bitmap.NoParent)
			rng := sim.NewRNG(1)
			cur := bitmap.Epoch(1)
			for e := 1; e <= epochs; e++ {
				for t := 0; t < 4096; t++ {
					s.Set(cur, rng.Int63n(1<<20))
				}
				if e < epochs {
					s.CreateEpoch(cur+1, cur)
					cur++
				}
			}
			all := s.Epochs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.MergeRange(all, 0, 1024)
			}
		})
	}
}

// BenchmarkAblationVictimPolicy compares the cleaner's greedy and
// cost-benefit segment selection under a hot/cold workload, reporting
// write amplification and peak wear. In this simulator's regimes the two
// policies score close on write amplification (hot segments decay to
// fully-invalid before cleaning, so greedy is near-optimal); the bench
// exists to quantify that, not to declare a winner.
func BenchmarkAblationVictimPolicy(b *testing.B) {
	for _, policy := range []iosnap.VictimPolicy{iosnap.VictimGreedy, iosnap.VictimCostBenefit} {
		b.Run(policy.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nc := benchNand()
				nc.PagesPerSegment = 256
				nc.Segments = 96
				cfg := iosnap.DefaultConfig(nc)
				cfg.VictimPolicy = policy
				cfg.GCWindow = 10 * sim.Millisecond
				f, err := iosnap.New(cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				buf := make([]byte, 4096)
				now := sim.Time(0)
				// Interleaved hot/cold arrivals (90% of writes to 10% of the
				// space) mix lifetimes within segments — the regime where
				// cost-benefit's age weighting pays off (LFS's classic case).
				rng := sim.NewRNG(uint64(policy) + 1)
				space := f.Sectors() * 19 / 20
				hotSpan := space / 10
				for w := 0; w < int(f.Sectors())*4; w++ {
					lba := hotSpan + rng.Int63n(space-hotSpan) // cold
					if rng.Intn(10) != 0 {
						lba = rng.Int63n(hotSpan) // hot
					}
					f.Scheduler().RunUntil(now)
					d, err := f.Write(now, lba, buf)
					if err != nil {
						b.Fatal(err)
					}
					now = d
				}
				f.Scheduler().Drain(now)
				b.ReportMetric(f.Stats().WriteAmplify, "write-amp")
				_, maxE, _ := f.Device().WearStats()
				b.ReportMetric(float64(maxE), "max-erases")
			}
		})
	}
}

// BenchmarkAblationSelectiveScan quantifies the paper's §7 activation
// optimization: scan only lineage-bearing segments instead of the whole
// log. Reports virtual activation time for a small, old snapshot on a
// large log.
func BenchmarkAblationSelectiveScan(b *testing.B) {
	for _, selective := range []bool{false, true} {
		name := "full-scan"
		if selective {
			name = "selective-scan"
		}
		b.Run(name, func(b *testing.B) {
			nc := benchNand()
			nc.Segments = 512 // 2 GB log
			cfg := iosnap.DefaultConfig(nc)
			cfg.SelectiveScan = selective
			f, err := iosnap.New(cfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			// Small early snapshot, then a large unrelated log.
			now, err := workload.Fill(f, 0, 128<<10, 0, 4096, f.Scheduler())
			if err != nil {
				b.Fatal(err)
			}
			snap, now, err := f.CreateSnapshot(now)
			if err != nil {
				b.Fatal(err)
			}
			spec := workload.Spec{
				Kind: workload.Write, Pattern: workload.Random,
				BlockSize: 4096, Threads: 2, QueueDepth: 16,
				TotalBytes: 1 << 30, RangeLo: 8192, RangeHi: f.Sectors(),
				Seed: 3, SubmitCost: sim.Microsecond,
			}
			if _, now, err = workload.Run(f, now, spec, workload.Options{Scheduler: f.Scheduler()}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				view, done, err := f.ActivateSync(now, snap.ID, ratelimit.WorkSleep{}, false)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(done.Sub(now).Milliseconds(), "virtual-ms")
				now = done
				if _, err := view.Deactivate(now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
