module iosnap

go 1.22
