package main

import (
	"testing"

	"iosnap/internal/ftl"
	"iosnap/internal/iosnap"
	"iosnap/internal/sim"
)

// Data-path benchmarks: host-side cost of the batched scatter-gather path
// vs the per-sector reference path, at 4K/64K/1M request sizes, on both the
// vanilla FTL and ioSnap. Each bench also reports the virtual bandwidth the
// simulated device sustained (identical between batched and reference by
// construction — the batch rewrite changes host cost, not device timing).
//
// scripts/bench.sh runs the 1M pairs and gates on the speedup floors from
// DESIGN.md §10: >=3x on 256-sector sequential writes, >=2x on 256-sector
// random reads.

// blockDev is the surface shared by *ftl.FTL and *iosnap.FTL that the
// data-path benches need.
type blockDev interface {
	Write(now sim.Time, lba int64, data []byte) (sim.Time, error)
	Read(now sim.Time, lba int64, buf []byte) (sim.Time, error)
	Trim(now sim.Time, lba int64, n int64) (sim.Time, error)
	Sectors() int64
	SectorSize() int
	Scheduler() *sim.Scheduler
}

func newDataPathDev(b *testing.B, kind string, reference bool) blockDev {
	b.Helper()
	switch kind {
	case "ftl":
		cfg := ftl.DefaultConfig(benchNand())
		cfg.ReferenceDataPath = reference
		f, err := ftl.New(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		return f
	case "iosnap":
		cfg := iosnap.DefaultConfig(benchNand())
		cfg.ReferenceDataPath = reference
		f, err := iosnap.New(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	b.Fatalf("unknown FTL kind %q", kind)
	return nil
}

// dataPathSizes maps the bench sub-name to the request size in sectors
// (4096-byte sectors from benchNand).
var dataPathSizes = []struct {
	name    string
	sectors int
}{
	{"4K", 1},
	{"64K", 16},
	{"1M", 256},
}

func reportVirtualBW(b *testing.B, bytes int64, elapsed sim.Duration) {
	if elapsed > 0 {
		secs := float64(elapsed) / float64(sim.Second)
		b.ReportMetric(float64(bytes)/secs/1e9, "virtual-GB/s")
	}
}

func benchDataPathWrite(b *testing.B, kind string, reference bool) {
	for _, sz := range dataPathSizes {
		sz := sz
		b.Run(kind+"/"+sz.name, func(b *testing.B) {
			f := newDataPathDev(b, kind, reference)
			ss := f.SectorSize()
			buf := make([]byte, sz.sectors*ss)
			// Stay inside 3/4 of the user space so steady-state GC pressure
			// is moderate and identical across variants.
			space := f.Sectors() * 3 / 4
			space -= space % int64(sz.sectors)
			now := sim.Time(0)
			cursor := int64(0)
			start := now
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Scheduler().RunUntil(now)
				d, err := f.Write(now, cursor, buf)
				if err != nil {
					b.Fatal(err)
				}
				now = d
				cursor += int64(sz.sectors)
				if cursor >= space {
					cursor = 0
				}
			}
			b.StopTimer()
			b.SetBytes(int64(len(buf)))
			reportVirtualBW(b, int64(b.N)*int64(len(buf)), now.Sub(start))
		})
	}
}

func benchDataPathRead(b *testing.B, kind string, reference bool) {
	for _, sz := range dataPathSizes {
		sz := sz
		b.Run(kind+"/"+sz.name, func(b *testing.B) {
			f := newDataPathDev(b, kind, reference)
			ss := f.SectorSize()
			// Prefill a 64 MB region, then issue random aligned reads.
			region := int64(64 << 20 / ss)
			fill := make([]byte, 256*ss)
			now := sim.Time(0)
			for lba := int64(0); lba < region; lba += 256 {
				f.Scheduler().RunUntil(now)
				d, err := f.Write(now, lba, fill)
				if err != nil {
					b.Fatal(err)
				}
				now = d
			}
			buf := make([]byte, sz.sectors*ss)
			rng := sim.NewRNG(11)
			start := now
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lba := rng.Int63n(region - int64(sz.sectors) + 1)
				d, err := f.Read(now, lba, buf)
				if err != nil {
					b.Fatal(err)
				}
				now = d
			}
			b.StopTimer()
			b.SetBytes(int64(len(buf)))
			reportVirtualBW(b, int64(b.N)*int64(len(buf)), now.Sub(start))
		})
	}
}

func benchDataPathTrim(b *testing.B, kind string, reference bool) {
	for _, sz := range dataPathSizes {
		sz := sz
		b.Run(kind+"/"+sz.name, func(b *testing.B) {
			f := newDataPathDev(b, kind, reference)
			ss := f.SectorSize()
			region := int64(64 << 20 / ss)
			region -= region % int64(sz.sectors)
			fill := make([]byte, 256*ss)
			refill := func(now sim.Time) sim.Time {
				for lba := int64(0); lba < region; lba += 256 {
					f.Scheduler().RunUntil(now)
					d, err := f.Write(now, lba, fill)
					if err != nil {
						b.Fatal(err)
					}
					now = d
				}
				return now
			}
			now := refill(0)
			var elapsed sim.Duration
			var bytes int64
			cursor := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if cursor >= region {
					b.StopTimer()
					now = refill(now)
					cursor = 0
					b.StartTimer()
				}
				d, err := f.Trim(now, cursor, int64(sz.sectors))
				if err != nil {
					b.Fatal(err)
				}
				elapsed += d.Sub(now)
				bytes += int64(sz.sectors * ss)
				now = d
				cursor += int64(sz.sectors)
			}
			b.StopTimer()
			b.SetBytes(int64(sz.sectors * ss))
			reportVirtualBW(b, bytes, elapsed)
		})
	}
}

func BenchmarkDataPathBatchedWrite(b *testing.B) {
	benchDataPathWrite(b, "ftl", false)
	benchDataPathWrite(b, "iosnap", false)
}

func BenchmarkDataPathReferenceWrite(b *testing.B) {
	benchDataPathWrite(b, "ftl", true)
	benchDataPathWrite(b, "iosnap", true)
}

func BenchmarkDataPathBatchedRead(b *testing.B) {
	benchDataPathRead(b, "ftl", false)
	benchDataPathRead(b, "iosnap", false)
}

func BenchmarkDataPathReferenceRead(b *testing.B) {
	benchDataPathRead(b, "ftl", true)
	benchDataPathRead(b, "iosnap", true)
}

func BenchmarkDataPathBatchedTrim(b *testing.B) {
	benchDataPathTrim(b, "ftl", false)
	benchDataPathTrim(b, "iosnap", false)
}

func BenchmarkDataPathReferenceTrim(b *testing.B) {
	benchDataPathTrim(b, "ftl", true)
	benchDataPathTrim(b, "iosnap", true)
}
